"""The Self Activation Module and the Wake-Up Time Queue (Section V-C/V-D).

Each core's *secure* timer wakes the secure world without any normal-world
involvement.  The next wake time is ``tp`` (the base period) plus a random
deviation drawn from ``[-tp, +tp]``, so consecutive rounds are separated by
anything in ``[0, 2*tp]`` and the rich OS can never lock onto a pattern.

On multi-core, SATIN must also randomise *which core* wakes next without
leaking the order.  Cross-core interrupts would be probe-visible, so the
coordination lives entirely in secure memory: a wake-up time queue holds
one future wake time per core; each core that finishes a round extracts a
randomly assigned slot, and when all slots are consumed the queue is
refreshed with newly generated times and a fresh random assignment.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, List, Optional

from repro.errors import IntrospectionError
from repro.hw.core import Core
from repro.hw.memory import PhysicalMemory
from repro.hw.platform import Machine
from repro.hw.world import World

#: Small guard so "immediately" still goes through the timer hardware.
_MIN_ARM_DELAY = 1e-6


class WakeUpTimeQueue:
    """Future wake times in secure memory, consumed in random order."""

    ENTRY_SIZE = 8  # microsecond-resolution fixed point, 64-bit

    def __init__(
        self,
        memory: PhysicalMemory,
        queue_base: int,
        slot_count: int,
        tp: float,
        deviation_fraction: float,
        rng: random.Random,
        start_time: float = 0.0,
    ) -> None:
        region = memory.region_at(queue_base)
        if region is None or not region.secure:
            raise IntrospectionError("wake-up queue must live in secure memory")
        if slot_count <= 0:
            raise IntrospectionError("wake-up queue needs at least one slot")
        self.memory = memory
        self.queue_base = queue_base
        self.slot_count = slot_count
        self.tp = tp
        self.deviation_fraction = deviation_fraction
        self._rng = rng
        self._available_slots: List[int] = []
        self._next_base = start_time
        self._last_refresh_base = start_time
        self.refresh_count = 0
        self.takes = 0
        #: Entries rejected by plausibility validation (fault tolerance:
        #: a corrupted or stale secure-SRAM slot must never arm a timer).
        self.invalid_entries = 0
        #: Fresh draws substituted for rejected entries.
        self.fallback_draws = 0
        #: Called with ``(slot, raw_value, now)`` for each rejected entry.
        self.invalid_listeners: List[Callable[[int, float, float], None]] = []

    # ------------------------------------------------------------------
    def _write_slot(self, slot: int, value_seconds: float) -> None:
        encoded = struct.pack("<Q", int(value_seconds * 1e6))
        self.memory.write(self.queue_base + slot * self.ENTRY_SIZE, encoded, World.SECURE)

    def _read_slot(self, slot: int) -> float:
        raw = self.memory.read(self.queue_base + slot * self.ENTRY_SIZE,
                               self.ENTRY_SIZE, World.SECURE)
        return struct.unpack("<Q", raw)[0] / 1e6

    def _refresh(self, now: float) -> None:
        """Generate ``slot_count`` fresh wake times and a random assignment."""
        self.refresh_count += 1
        base = max(self._next_base, now)
        td = self.tp * self.deviation_fraction
        for i in range(self.slot_count):
            deviation = self._rng.uniform(-td, td) if td > 0 else 0.0
            wake_at = base + (i + 1) * self.tp + deviation
            self._write_slot(i, max(wake_at, now))
        self._next_base = base + self.slot_count * self.tp
        self._last_refresh_base = base
        self._available_slots = list(range(self.slot_count))
        self._rng.shuffle(self._available_slots)

    # ------------------------------------------------------------------
    def plausible(self, value_seconds: float) -> bool:
        """Can this slot value have been written by :meth:`_refresh`?

        Legitimate entries of the current generation lie in
        ``[base + tp - td, base + slot_count*tp + td]`` (clamped to the
        refresh instant), with ``td <= tp``.  One full period of slack on
        each side keeps every honest entry inside the window while any
        corrupted 64-bit pattern (decoding to ~1.8e13 s) or genuinely
        stale value from generations ago falls outside.
        """
        base = self._last_refresh_base
        lo = base - self.tp
        hi = base + (self.slot_count + 2) * self.tp
        return lo <= value_seconds <= hi

    def take(self, now: float) -> float:
        """Extract the next randomly assigned wake time (>= now).

        Slot values live in secure SRAM but SATIN does not trust them
        blindly: a value a fault (or an SRAM disturbance) pushed outside
        the plausible window is rejected and replaced with a fresh draw,
        so a corrupted entry can never park a core's timer in the far
        future (a silent liveness loss) or burn it on immediate wakes.
        """
        if not self._available_slots:
            self._refresh(now)
        slot = self._available_slots.pop()
        self.takes += 1
        value = self._read_slot(slot)
        if not self.plausible(value):
            self.invalid_entries += 1
            for listener in self.invalid_listeners:
                listener(slot, value, now)
            td = self.tp * self.deviation_fraction
            deviation = self._rng.uniform(-td, td) if td > 0 else 0.0
            value = now + self.tp + deviation
            self.fallback_draws += 1
        return max(value, now + _MIN_ARM_DELAY)

    @property
    def slots_remaining(self) -> int:
        return len(self._available_slots)


class SelfActivationModule:
    """Programs per-core secure timers from the wake-up time queue."""

    def __init__(
        self,
        machine: Machine,
        queue: WakeUpTimeQueue,
        random_core: bool = True,
        fixed_core_index: int = 0,
    ) -> None:
        self.machine = machine
        self.queue = queue
        self.random_core = random_core
        self.fixed_core_index = fixed_core_index
        self.arm_count = 0
        #: Observers called with ``(core, wake_at)`` on every arm — the
        #: round watchdog tracks expected wakes here, the fault injector
        #: audits that no corrupted value ever reached the hardware.
        self.arm_listeners: List[Callable[[Core, float], None]] = []

    # ------------------------------------------------------------------
    @property
    def participating_cores(self) -> List[Core]:
        if self.random_core:
            return list(self.machine.cores)
        return [self.machine.cores[self.fixed_core_index]]

    def arm_initial(self) -> None:
        """Trusted-boot stage: give every participating core a first wake."""
        now = self.machine.sim.now
        for core in self.participating_cores:
            self._arm(core, self.queue.take(now))

    def rearm(self, core: Core) -> None:
        """End of a round: core extracts its next assigned wake time."""
        self._arm(core, self.queue.take(self.machine.sim.now))

    def _arm(self, core: Core, wake_at: float) -> None:
        self.arm_count += 1
        core.secure_timer.program_wakeup(wake_at, World.SECURE)
        self.machine.trace.emit(
            self.machine.sim.now, "satin", "wake-up armed",
            core=core.index, wake_at=wake_at,
        )
        for listener in self.arm_listeners:
            listener(core, wake_at)

    def disarm_all(self) -> None:
        for core in self.machine.cores:
            core.secure_timer.stop(World.SECURE)
