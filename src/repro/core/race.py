"""The analytical race-condition model (Section III-B2 / IV-C).

The paper formalises the race between a scanning secure world and a hiding
normal world:

Equation 1 — the attacker escapes iff

    Ts_switch + S * Ts_1byte  >  Tns_delay + Tns_recover

where ``S`` is how many bytes the checker reads before touching the first
malicious byte and ``Tns_delay = Tns_sched + Tns_threshold``.

Equation 2 — rearranged, the attacker wins whenever the malicious bytes sit
beyond

    S > (Tns_sched + Tns_threshold + Tns_recover - Ts_switch) / Ts_1byte

With the paper's worst-case Juno numbers the bound is 1,218,351 bytes, so
~90% of an 11,916,240-byte kernel is unprotected by whole-kernel random
introspection — the number SATIN's area size is derived from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.config import PAPER_KERNEL_SIZE, PAPER_TSLEEP
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RaceParameters:
    """The six quantities of Equation 1/2, in seconds and bytes.

    Defaults are the paper's worst-case-for-the-defender values from
    Section IV-C: A57 scanning speed (fastest checker), the slowest
    observed recovery, and the largest observed probing threshold.
    """

    #: one-direction world-switch cost, Ts_switch.
    ts_switch: float = 3.60e-6
    #: secure-world per-byte inspection cost, Ts_1byte.
    ts_1byte: float = 6.67e-9
    #: prober rescheduling delay, Tns_sched (= Tsleep for KProber-II).
    tns_sched: float = PAPER_TSLEEP
    #: prober staleness threshold, Tns_threshold.
    tns_threshold: float = 1.80e-3
    #: attacker trace recovery time, Tns_recover.
    tns_recover: float = 6.13e-3
    #: size of the introspected kernel in bytes.
    kernel_size: int = PAPER_KERNEL_SIZE

    def __post_init__(self) -> None:
        for name in ("ts_switch", "ts_1byte", "tns_sched", "tns_threshold", "tns_recover"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.ts_1byte == 0:
            raise ConfigurationError("ts_1byte must be positive")
        if self.kernel_size <= 0:
            raise ConfigurationError("kernel_size must be positive")

    # ------------------------------------------------------------------
    @property
    def tns_delay(self) -> float:
        """Total probing delay, Tns_delay = Tns_sched + Tns_threshold."""
        return self.tns_sched + self.tns_threshold

    def with_(self, **changes: float) -> "RaceParameters":
        """A modified copy (parameter-sweep helper)."""
        return replace(self, **changes)


def evasion_succeeds(params: RaceParameters, prescanned_bytes: float) -> bool:
    """Equation 1: does the attacker hide before the checker reaches it?

    ``prescanned_bytes`` is ``S`` — the clean bytes the checker reads
    before the first malicious byte.
    """
    checker_arrival = params.ts_switch + prescanned_bytes * params.ts_1byte
    attacker_done = params.tns_delay + params.tns_recover
    return checker_arrival > attacker_done


def s_bound(params: RaceParameters) -> int:
    """Equation 2: the largest S at which the checker still wins (bytes).

    Malicious bytes placed deeper than this into the scan order escape.
    The paper's worst case evaluates to 1,218,351 bytes.
    """
    numerator = (
        params.tns_sched
        + params.tns_threshold
        + params.tns_recover
        - params.ts_switch
    )
    # Round to nearest, matching the paper's reported 1,218,351 bytes.
    return max(int(math.floor(numerator / params.ts_1byte + 0.5)), 0)


def unprotected_fraction(params: RaceParameters) -> float:
    """Fraction of the kernel whole-image introspection cannot protect.

    Assuming the attack bytes appear uniformly at random in the kernel,
    only the first ``s_bound`` scanned bytes are safe; the paper computes
    ~90% unprotected.
    """
    protected = min(s_bound(params), params.kernel_size)
    return 1.0 - protected / params.kernel_size


def max_safe_area_size(params: RaceParameters) -> int:
    """SATIN's area-size bound (Section V-B).

    One area must be fully checked before the attacker can both notice the
    secure entry and finish hiding:

        size < (Tns_delay + Tns_recover - Ts_switch) / Ts_1byte
    """
    numerator = params.tns_delay + params.tns_recover - params.ts_switch
    bound = int(math.floor(numerator / params.ts_1byte + 0.5))
    if bound <= 0:
        raise ConfigurationError(
            "race parameters leave no safe area size (checker cannot win)"
        )
    return bound


def escape_probability(params: RaceParameters) -> float:
    """P(escape) for a uniformly placed trace under whole-kernel scanning.

    Conditioned on the scan starting while the attack is active, the trace
    escapes iff its position exceeds the Equation-2 bound.
    """
    return unprotected_fraction(params)
