"""Integrity alarms raised by the checking module.

Alarms carry a *severity* so server-side policy can triage them:

``integrity``
    A scanned area's digest did not match its authorized hash — the
    classic SATIN detection (kind ``mismatch``).
``liveness``
    The engine itself degraded: a scheduled round never ran and the
    bounded re-arm retries were exhausted (a :class:`DegradedRound`).
``degraded``
    The engine survived a suspected platform fault by falling back —
    e.g. an implausible wake-up-queue entry replaced by a fresh draw, or
    a snapshot mismatch that a direct re-scan proved spurious.  The
    round's answer is still correct; the fault is recorded, not hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

#: Alarm severity levels, mildest last.
SEVERITY_INTEGRITY = "integrity"
SEVERITY_LIVENESS = "liveness"
SEVERITY_DEGRADED = "degraded"

SEVERITIES = (SEVERITY_INTEGRITY, SEVERITY_LIVENESS, SEVERITY_DEGRADED)


@dataclass(frozen=True)
class AlarmRecord:
    """One detected integrity violation (or degradation event)."""

    time: float
    area_index: int
    offset: int
    length: int
    core_index: int
    round_index: int
    digest: int
    expected: int
    #: triage level; the pre-existing mismatch path stays ``integrity``.
    severity: str = SEVERITY_INTEGRITY
    #: what kind of event raised the alarm (``mismatch``,
    #: ``missed_round``, ``wakeup_entry``, ``snapshot_suspected``, ...).
    kind: str = "mismatch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ALARM t={self.time:.6f}s area={self.area_index} "
            f"[{self.offset:#x}+{self.length:#x}] core={self.core_index} "
            f"round={self.round_index}"
        )


@dataclass(frozen=True)
class DegradedRound(AlarmRecord):
    """A scheduled round never ran; re-arm retries were exhausted.

    Raised by the :class:`~repro.core.watchdog.RoundWatchdog` with
    severity ``liveness``.  ``area_index``/``digest`` fields are -1/0 —
    no scan happened, which is exactly the problem.
    """

    severity: str = SEVERITY_LIVENESS
    kind: str = "missed_round"
    #: why the round was declared lost.
    reason: str = "wake never serviced"
    #: re-arm attempts spent before alarming.
    retries: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DEGRADED t={self.time:.6f}s core={self.core_index} "
            f"({self.reason}, {self.retries} retries)"
        )


class AlarmSink:
    """Collects alarms; listeners model "alert the server side or user"."""

    def __init__(self) -> None:
        self.alarms: List[AlarmRecord] = []
        self._listeners: List[Callable[[AlarmRecord], None]] = []

    def add_listener(self, listener: Callable[[AlarmRecord], None]) -> None:
        self._listeners.append(listener)

    def raise_alarm(self, alarm: AlarmRecord) -> None:
        self.alarms.append(alarm)
        for listener in self._listeners:
            listener(alarm)

    def alarms_for_area(self, area_index: int) -> List[AlarmRecord]:
        return [a for a in self.alarms if a.area_index == area_index]

    def by_severity(self, severity: str) -> List[AlarmRecord]:
        return [a for a in self.alarms if a.severity == severity]

    def severity_counts(self) -> Dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for alarm in self.alarms:
            counts[alarm.severity] = counts.get(alarm.severity, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.alarms)
