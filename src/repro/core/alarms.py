"""Integrity alarms raised by the checking module."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List


@dataclass(frozen=True)
class AlarmRecord:
    """One detected integrity violation."""

    time: float
    area_index: int
    offset: int
    length: int
    core_index: int
    round_index: int
    digest: int
    expected: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ALARM t={self.time:.6f}s area={self.area_index} "
            f"[{self.offset:#x}+{self.length:#x}] core={self.core_index} "
            f"round={self.round_index}"
        )


class AlarmSink:
    """Collects alarms; listeners model "alert the server side or user"."""

    def __init__(self) -> None:
        self.alarms: List[AlarmRecord] = []
        self._listeners: List[Callable[[AlarmRecord], None]] = []

    def add_listener(self, listener: Callable[[AlarmRecord], None]) -> None:
        self._listeners.append(listener)

    def raise_alarm(self, alarm: AlarmRecord) -> None:
        self.alarms.append(alarm)
        for listener in self._listeners:
            listener(alarm)

    def alarms_for_area(self, area_index: int) -> List[AlarmRecord]:
        return [a for a in self.alarms if a.area_index == area_index]

    def __len__(self) -> int:
        return len(self.alarms)
