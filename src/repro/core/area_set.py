"""The Kernel Area Set: pseudo-random area selection without replacement.

Section V-B: each introspection round randomly picks one area from the set
and removes it; when the set empties it is refilled with all areas.  Every
``m`` rounds therefore scan the *entire* kernel exactly once, while the
normal world cannot predict which area any given round will touch.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.areas import Area
from repro.errors import IntrospectionError


class KernelAreaSet:
    """Random-without-replacement selector over a fixed partition."""

    def __init__(self, areas: List[Area], rng: random.Random) -> None:
        if not areas:
            raise IntrospectionError("area set needs at least one area")
        self.areas = list(areas)
        self._rng = rng
        self._remaining: List[Area] = list(self.areas)
        #: completed full passes over the kernel.
        self.pass_count = 0
        #: per-area pick counter (indexed by area index).
        self.pick_counts: Dict[int, int] = {area.index: 0 for area in self.areas}
        self.total_picks = 0

    # ------------------------------------------------------------------
    def pick(self) -> Area:
        """Remove and return a uniformly random remaining area."""
        slot = self._rng.randrange(len(self._remaining))
        # Swap-pop keeps removal O(1); order within a pass is random anyway.
        self._remaining[slot], self._remaining[-1] = (
            self._remaining[-1],
            self._remaining[slot],
        )
        area = self._remaining.pop()
        self.pick_counts[area.index] += 1
        self.total_picks += 1
        if not self._remaining:
            self.pass_count += 1
            self._remaining = list(self.areas)
        return area

    # ------------------------------------------------------------------
    @property
    def rounds_per_pass(self) -> int:
        return len(self.areas)

    @property
    def remaining_in_pass(self) -> int:
        """Areas not yet scanned in the current pass (m after a refill)."""
        return len(self._remaining)

    def max_pick_spread(self) -> int:
        """max - min per-area pick counts; never exceeds 1 (invariant)."""
        counts = self.pick_counts.values()
        return max(counts) - min(counts)
