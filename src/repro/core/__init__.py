"""SATIN — the paper's primary contribution."""

from repro.core.activation import SelfActivationModule, WakeUpTimeQueue
from repro.core.alarms import (
    SEVERITY_DEGRADED,
    SEVERITY_INTEGRITY,
    SEVERITY_LIVENESS,
    AlarmRecord,
    AlarmSink,
    DegradedRound,
)
from repro.core.area_set import KernelAreaSet
from repro.core.areas import (
    Area,
    area_containing,
    build_partition,
    partition_packed,
    partition_sections,
    partition_whole,
    validate_partition,
)
from repro.core.checker import IntegrityCheckingModule
from repro.core.policy import DerivedPolicy, derive_policy
from repro.core.race import (
    RaceParameters,
    escape_probability,
    evasion_succeeds,
    max_safe_area_size,
    s_bound,
    unprotected_fraction,
)
from repro.core.satin import Satin, install_satin
from repro.core.watchdog import RoundWatchdog

__all__ = [
    "AlarmRecord",
    "AlarmSink",
    "Area",
    "DegradedRound",
    "DerivedPolicy",
    "RoundWatchdog",
    "SEVERITY_DEGRADED",
    "SEVERITY_INTEGRITY",
    "SEVERITY_LIVENESS",
    "IntegrityCheckingModule",
    "KernelAreaSet",
    "RaceParameters",
    "Satin",
    "SelfActivationModule",
    "WakeUpTimeQueue",
    "area_containing",
    "build_partition",
    "derive_policy",
    "escape_probability",
    "evasion_succeeds",
    "install_satin",
    "max_safe_area_size",
    "partition_packed",
    "partition_sections",
    "partition_whole",
    "s_bound",
    "unprotected_fraction",
    "validate_partition",
]
