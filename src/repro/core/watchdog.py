"""Missed-round detection: the liveness half of graceful degradation.

SATIN's security argument assumes every armed wake actually happens.  On a
faulty platform that assumption breaks — a secure timer expiry can be
dropped, delivered late, or swallowed by a stalled core — and without a
watchdog the engine would simply stop scanning, silently.

:class:`RoundWatchdog` closes the gap.  It observes every arm through the
activation module's listener list, then checks ``grace`` seconds after the
programmed wake whether the wake was serviced (evidence: the TSP's
per-core entry count advanced, or a newer arm superseded this one).  A
missed wake is re-armed directly through the secure timer, up to
``max_retries`` times; after that a :class:`~repro.core.alarms.
DegradedRound` alarm (severity ``liveness``) is raised and the retry
budget resets so the engine keeps fighting for liveness instead of giving
up.  The watchdog draws no randomness and is installed only by
``Satin.harden()``, so baseline timelines are untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.alarms import DegradedRound
from repro.hw.core import Core

#: Default grace window as a fraction of the base period tp: generous next
#: to a round's length (milliseconds) yet small enough that the full retry
#: budget fits well inside one period.
DEFAULT_GRACE_FRACTION = 0.05


class RoundWatchdog:
    """Detects and recovers wakes that never reached the secure world."""

    def __init__(
        self,
        satin,
        grace: Optional[float] = None,
        max_retries: int = 3,
        retry_delay: Optional[float] = None,
    ) -> None:
        self.satin = satin
        self.machine = satin.machine
        tp = satin.policy.tp
        self.grace = grace if grace is not None else tp * DEFAULT_GRACE_FRACTION
        self.retry_delay = retry_delay if retry_delay is not None else self.grace
        self.max_retries = max_retries
        #: per-core arm generation: a check only acts if no later arm
        #: superseded the one it guards.
        self._generation: Dict[int, int] = {}
        self._retries: Dict[int, int] = {}
        self._retry_arm_in_progress = False
        # --- statistics ---------------------------------------------------
        self.checks = 0
        self.missed_wakes = 0
        self.rearms = 0
        self.late_rounds = 0
        self.degraded_rounds = 0
        #: ``(time, core_index)`` log of every missed wake, in detection
        #: order — the fault injector matches injected drops against it.
        self.missed_events: List[Tuple[float, int]] = []
        metrics = self.machine.metrics
        self._m_checks = metrics.counter("satin.watchdog.checks")
        self._m_missed = metrics.counter("satin.watchdog.missed_wakes")
        self._m_rearms = metrics.counter("satin.watchdog.rearms")
        self._m_degraded = metrics.counter("satin.degraded_rounds")
        satin.activation.arm_listeners.append(self._on_arm)
        # Hardening usually happens after install(): the boot-time arms
        # already sit in the timer hardware and never pass through the
        # listener.  Guard them retroactively, or a fault on a core's
        # first wake would go unwatched and silence the core for good.
        for core in satin.activation.participating_cores:
            pending = core.secure_timer.next_fire_time()
            if pending is not None:
                self._guard(core, pending)

    # ------------------------------------------------------------------
    def _on_arm(self, core: Core, wake_at: float) -> None:
        self._guard(core, wake_at)

    def _guard(self, core: Core, wake_at: float) -> None:
        generation = self._generation.get(core.index, 0) + 1
        self._generation[core.index] = generation
        if not self._retry_arm_in_progress:
            # A normal (re)arm means the engine made progress on this core;
            # the retry budget is per lost wake, not per run.
            self._retries[core.index] = 0
        serviced = self.satin.tsp.timer_entries_per_core.get(core.index, 0)
        self.machine.sim.schedule_at(
            wake_at + self.grace, self._check, core, generation, wake_at, serviced
        )

    def _check(
        self, core: Core, generation: int, wake_at: float, serviced_at_arm: int
    ) -> None:
        self.checks += 1
        self._m_checks.inc()
        if self._generation.get(core.index) != generation:
            return  # a later arm owns this core's liveness now
        serviced = self.satin.tsp.timer_entries_per_core.get(core.index, 0)
        if serviced > serviced_at_arm:
            # The wake reached S-EL1 (possibly late); its round is still
            # running and will re-arm on completion.
            self.late_rounds += 1
            return
        now = self.machine.sim.now
        self.missed_wakes += 1
        self._m_missed.inc()
        self.missed_events.append((now, core.index))
        self.machine.trace.emit(
            now, "satin", "wake missed",
            core=core.index, wake_at=wake_at,
            retries=self._retries.get(core.index, 0),
        )
        retries = self._retries.get(core.index, 0)
        if retries >= self.max_retries:
            self.degraded_rounds += 1
            self._m_degraded.inc()
            self.satin.alarms.raise_alarm(
                DegradedRound(
                    time=now,
                    area_index=-1,
                    offset=0,
                    length=0,
                    core_index=core.index,
                    round_index=-1,
                    digest=0,
                    expected=0,
                    reason=f"wake at t={wake_at:.6f}s never serviced",
                    retries=retries,
                )
            )
            self._retries[core.index] = 0  # keep fighting for liveness
        else:
            self._retries[core.index] = retries + 1
        self.rearms += 1
        self._m_rearms.inc()
        self._retry_arm_in_progress = True
        try:
            self.satin.activation._arm(core, now + self.retry_delay)
        finally:
            self._retry_arm_in_progress = False
