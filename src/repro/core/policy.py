"""Parameter derivation for SATIN (Section V-B/V-C).

Turns the analytical race model into concrete engine parameters:

* the area-size bound (one round must finish before a TZ-Evader can react);
* the base period ``tp = Tgoal / m`` giving a full-kernel pass every
  ``Tgoal`` on average;
* a full-pass latency estimate matching the paper's ~152 s figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.areas import Area
from repro.core.race import RaceParameters, max_safe_area_size
from repro.errors import IntrospectionError


@dataclass(frozen=True)
class DerivedPolicy:
    """Concrete engine parameters derived from configuration + race model."""

    max_area_size: int
    area_count: int
    tp: float
    #: expected time to scan every area at least once (paper: ~152 s).
    full_pass_time: float


def derive_policy(
    tgoal: float,
    areas: List[Area],
    race: Optional[RaceParameters] = None,
    max_area_size: Optional[int] = None,
    per_byte_cost: float = 6.67e-9,
    enforce_bound: bool = True,
) -> DerivedPolicy:
    """Validate a partition against the race bound and derive timing.

    ``max_area_size`` overrides the race-model bound when given (used by
    the whole-kernel baselines, which deliberately violate it).
    """
    race = race if race is not None else RaceParameters()
    bound = max_area_size if max_area_size is not None else max_safe_area_size(race)
    if enforce_bound:
        for area in areas:
            if area.length > bound:
                raise IntrospectionError(
                    f"area {area.index} ({area.length} bytes) exceeds the "
                    f"safe bound of {bound} bytes"
                )
    m = len(areas)
    tp = tgoal / m
    scan_time = sum(area.length for area in areas) * per_byte_cost
    return DerivedPolicy(
        max_area_size=bound,
        area_count=m,
        tp=tp,
        full_pass_time=m * tp + scan_time,
    )
