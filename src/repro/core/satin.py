"""SATIN: the Secure Asynchronous Trustworthy INtrospection engine.

This is the paper's contribution (Section V), assembled from the modules in
this package:

* trusted boot computes per-area authorized hashes into secure SRAM;
* the **Integrity Checking Module** scans one randomly chosen area per
  round (divide-and-conquer, areas below the race-model bound, NS
  interrupts blocked for the round);
* the **Self Activation Module** wakes a random core at a randomized time
  via per-core secure timers coordinated through the secure-memory
  wake-up time queue — no cross-core interrupts that the normal world
  could probe.

The same engine, configured through :class:`~repro.config.SatinConfig`,
also realises the *baselines* the paper defeats (whole-kernel scans, fixed
core, fixed period) — see :mod:`repro.secure.baseline` — which makes the
ablation benchmarks direct config sweeps.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.config import SatinConfig
from repro.core.activation import SelfActivationModule, WakeUpTimeQueue
from repro.core.alarms import SEVERITY_DEGRADED, AlarmRecord, AlarmSink
from repro.core.area_set import KernelAreaSet
from repro.core.areas import Area, build_partition, validate_partition
from repro.core.checker import IntegrityCheckingModule
from repro.core.policy import DerivedPolicy, derive_policy
from repro.core.race import RaceParameters
from repro.errors import IntrospectionError
from repro.hw.core import Core
from repro.hw.platform import SECURE_SRAM_BASE, Machine
from repro.kernel.os import RichOS
from repro.secure.boot import AuthorizedHashStore
from repro.secure.snapshot import SecureSnapshotBuffer
from repro.secure.tsp import TestSecurePayload

#: Secure SRAM layout: authorized hash table, wake-up queue, snapshot area.
_HASH_TABLE_OFFSET = 0x0000
_WAKEUP_QUEUE_OFFSET = 0x1000
_SNAPSHOT_OFFSET = 0x2000


class Satin:
    """The complete SATIN mechanism on one machine."""

    def __init__(
        self,
        machine: Machine,
        rich_os: RichOS,
        config: Optional[SatinConfig] = None,
        race: Optional[RaceParameters] = None,
        tsp: Optional[TestSecurePayload] = None,
    ) -> None:
        self.machine = machine
        self.rich_os = rich_os
        self.config = config if config is not None else machine.config.satin
        self.race = race if race is not None else RaceParameters()
        self.tsp = tsp if tsp is not None else TestSecurePayload(machine)

        image = rich_os.image
        self.areas: List[Area] = build_partition(
            image.system_map, self.config.partition_mode, self.config.max_area_size
        )
        validate_partition(self.areas, image.size)
        self.policy: DerivedPolicy = derive_policy(
            tgoal=self.config.tgoal,
            areas=self.areas,
            race=self.race,
            max_area_size=self.config.max_area_size,
            enforce_bound=(
                self.config.enforce_area_bound
                and self.config.partition_mode != "whole"
            ),
        )

        memory = machine.memory
        self.store = AuthorizedHashStore(
            memory, SECURE_SRAM_BASE + _HASH_TABLE_OFFSET,
            capacity_entries=max(len(self.areas), 64),
        )
        snapshot_capacity = machine.config.secure_memory_size - _SNAPSHOT_OFFSET
        self.snapshot_buffer = SecureSnapshotBuffer(
            memory, SECURE_SRAM_BASE + _SNAPSHOT_OFFSET, snapshot_capacity
        )
        self.alarms = AlarmSink()
        self.area_set = KernelAreaSet(
            self.areas, machine.rng.stream("satin.area_set")
        )
        deviation = (
            self.config.deviation_fraction if self.config.random_deviation else 0.0
        )
        slot_count = (
            len(machine.cores) if self.config.random_core else 1
        )
        self.wakeup_queue = WakeUpTimeQueue(
            memory,
            SECURE_SRAM_BASE + _WAKEUP_QUEUE_OFFSET,
            slot_count=slot_count,
            tp=self.policy.tp,
            deviation_fraction=deviation,
            rng=machine.rng.stream("satin.wakeup"),
            start_time=machine.sim.now,
        )
        self.activation = SelfActivationModule(
            machine,
            self.wakeup_queue,
            random_core=self.config.random_core,
        )
        self.checker = IntegrityCheckingModule(
            machine,
            image,
            self.store,
            self.area_set,
            self.config,
            self.alarms,
            snapshot_buffer=self.snapshot_buffer,
        )
        #: auxiliary secure-world checks run piggybacked on rounds (e.g.
        #: the semantic module-list checker); each is a coroutine factory
        #: ``(core) -> generator`` executed after the area scan.
        self._auxiliary_checks: List = []
        self.auxiliary_runs = 0
        self.installed = False
        #: the :class:`~repro.core.watchdog.RoundWatchdog` once hardened.
        self.watchdog = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "Satin":
        """Trusted boot: compute authorized hashes and arm first wake-ups.

        Must run before the attacker executes (the hashes must describe
        the benign kernel).
        """
        if self.installed:
            raise IntrospectionError("SATIN is already installed")
        self.store.compute_at_boot(self.rich_os.image, [a.span for a in self.areas])
        self.tsp.set_timer_service(self._on_secure_wake)
        self.activation.arm_initial()
        self.installed = True
        self.machine.metrics.gauge("satin.areas").set(float(len(self.areas)))
        self.machine.metrics.gauge("satin.tp_seconds").set(self.policy.tp)
        self.machine.trace.emit(
            self.machine.sim.now, "satin", "installed",
            areas=len(self.areas), tp=self.policy.tp,
            random_core=self.config.random_core,
        )
        return self

    def harden(
        self,
        grace: Optional[float] = None,
        max_retries: int = 3,
        retry_delay: Optional[float] = None,
    ):
        """Enable graceful degradation against platform faults.

        Installs the :class:`~repro.core.watchdog.RoundWatchdog` (missed
        wakes are re-armed up to ``max_retries`` times, then alarmed at
        ``liveness`` severity), turns on snapshot-mismatch re-verification
        in the checker, and meters/alarms wake-up-queue entries rejected
        by validation at ``degraded`` severity.  Separate from install()
        and off by default: hardening changes the event timeline (watchdog
        checks), so baseline reproductions never pay for it.  Returns the
        watchdog.
        """
        from repro.core.watchdog import RoundWatchdog

        if self.watchdog is not None:
            raise IntrospectionError("SATIN is already hardened")
        self.watchdog = RoundWatchdog(
            self, grace=grace, max_retries=max_retries, retry_delay=retry_delay
        )
        self.checker.verify_snapshot_mismatch = True
        self.wakeup_queue.invalid_listeners.append(self._on_invalid_wakeup_entry)
        return self.watchdog

    def _on_invalid_wakeup_entry(self, slot: int, value: float, now: float) -> None:
        self.machine.metrics.counter("satin.wakeup_invalid_entries").inc()
        self.alarms.raise_alarm(
            AlarmRecord(
                time=now,
                area_index=-1,
                offset=slot,
                length=WakeUpTimeQueue.ENTRY_SIZE,
                core_index=-1,
                round_index=-1,
                digest=int(value * 1e6),
                expected=0,
                severity=SEVERITY_DEGRADED,
                kind="wakeup_entry",
            )
        )

    def uninstall(self) -> None:
        """Disarm timers and release the secure timer service."""
        if not self.installed:
            return
        self.activation.disarm_all()
        self.tsp.set_timer_service(None)
        self.installed = False

    # ------------------------------------------------------------------
    # The secure timer service: one round then re-arm (Figure 6)
    # ------------------------------------------------------------------
    def add_auxiliary_check(self, factory) -> None:
        """Piggyback a secure-world check onto every introspection round.

        ``factory(core)`` must return a coroutine yielding ``cpu(...)``
        requests — e.g. ``SemanticChecker(...).run_check``.  Auxiliary
        checks run after the area scan, inside the same non-preemptible
        secure window, so they inherit SATIN's randomized, unobservable
        scheduling for free.
        """
        self._auxiliary_checks.append(factory)

    def _on_secure_wake(self, core: Core) -> Generator[Any, Any, None]:
        result = yield from self.checker.run_round(core)
        for factory in self._auxiliary_checks:
            yield from factory(core)
            self.auxiliary_runs += 1
        self.activation.rearm(core)
        self.machine.trace.emit(
            self.machine.sim.now, "satin", "round complete",
            round=result.round_index, area=result.area_index,
            core=core.index, match=result.match,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def round_count(self) -> int:
        return self.checker.round_count

    @property
    def detection_count(self) -> int:
        return len(self.alarms)

    @property
    def full_passes(self) -> int:
        return self.area_set.pass_count

    def summary(self) -> dict:
        """Machine-readable run summary (experiments/EXPERIMENTS.md)."""
        return {
            "areas": len(self.areas),
            "tp": self.policy.tp,
            "rounds": self.round_count,
            "full_passes": self.full_passes,
            "alarms": self.detection_count,
            "avg_round_duration": self.checker.average_round_duration(),
            "secure_entries": sum(c.secure_entries for c in self.machine.cores),
        }


def install_satin(
    machine: Machine,
    rich_os: RichOS,
    config: Optional[SatinConfig] = None,
) -> Satin:
    """Build and install SATIN in one call (the common path)."""
    return Satin(machine, rich_os, config=config).install()
