"""The Integrity Checking Module (Section V-B).

One invocation = one *round*: pick an area from the Kernel Area Set, hash
it from the secure world (directly, or via a snapshot for the Table-I
comparison), compare against the authorized digest computed at trusted
boot, and raise an alarm on mismatch.  While a round runs, normal-world
interrupts targeting the scanning core are blocked (``SCR_EL3.IRQ = 0``
semantics) so the rich OS cannot stretch the round.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.config import SatinConfig
from repro.core.alarms import SEVERITY_DEGRADED, AlarmRecord, AlarmSink
from repro.core.area_set import KernelAreaSet
from repro.core.areas import Area
from repro.hw.core import Core
from repro.hw.platform import Machine
from repro.hw.registers import SCR_EL3_IRQ_BIT
from repro.hw.world import World
from repro.kernel.image import KernelImage
from repro.secure.boot import AuthorizedHashStore
from repro.secure.introspect import ScanResult, check_area
from repro.secure.snapshot import SecureSnapshotBuffer


class IntegrityCheckingModule:
    """Divide-and-conquer integrity checking over the area partition."""

    def __init__(
        self,
        machine: Machine,
        image: KernelImage,
        store: AuthorizedHashStore,
        area_set: KernelAreaSet,
        config: SatinConfig,
        alarms: AlarmSink,
        snapshot_buffer: Optional[SecureSnapshotBuffer] = None,
    ) -> None:
        self.machine = machine
        self.image = image
        self.store = store
        self.area_set = area_set
        self.config = config
        self.alarms = alarms
        self.snapshot_buffer = snapshot_buffer if config.use_snapshot else None
        self.results: List[ScanResult] = []
        self.round_count = 0
        self.mismatch_count = 0
        #: Allow fusing a round's chunk events into one span whenever the
        #: round provably cannot be interleaved (NS interrupts blocked, no
        #: armed attacker/prober registered on the machine).  Not part of
        #: SatinConfig: it changes simulation *cost*, never its outcome.
        self.coalesce_scans = True
        #: Graceful degradation (enabled by ``Satin.harden()``): a snapshot
        #: mismatch is re-verified with a direct scan before alarming — a
        #: corrupted snapshot *buffer* then degrades the round instead of
        #: faking a kernel compromise.
        self.verify_snapshot_mismatch = False
        self.snapshot_reverifies = 0
        self.snapshot_suspected = 0
        #: Rounds that fell back from a fused span to per-chunk scanning
        #: because the installed fault injector reported interference.
        self.chunked_fallbacks = 0
        metrics = machine.metrics
        self._rounds_counter = metrics.counter("satin.rounds")
        self._round_duration = metrics.histogram("satin.round_duration_seconds")
        self._scan_bytes = metrics.histogram("satin.scan_bytes")
        self._mismatches_counter = metrics.counter("satin.mismatches")

    # ------------------------------------------------------------------
    def run_round(self, core: Core) -> Generator[Any, Any, ScanResult]:
        """One introspection round on ``core`` (secure-world coroutine)."""
        round_index = self.round_count
        self.round_count += 1
        blocked = self.config.block_ns_interrupts
        if blocked:
            self._block_ns(core, True)
        try:
            area = self.area_set.pick()
            self.machine.trace.emit(
                self.machine.sim.now, "satin", "round begins",
                round=round_index, area=area.index, core=core.index,
            )
            # Fuse the round's chunk events only when nothing can observe or
            # mutate kernel memory mid-scan; any armed evader/prober keeps
            # the per-chunk timeline so race semantics are untouched.
            fusable = (
                self.coalesce_scans
                and blocked
                and self.snapshot_buffer is None
            )
            coalesce = fusable and not self.machine.scan_interference()
            if fusable and not coalesce:
                injector = self.machine.fault_injector
                if injector is not None and injector.interferes_with_scans():
                    # Suspected fault interference forced the per-chunk
                    # timeline; metered only here so baseline snapshots
                    # never grow a new counter.
                    self.chunked_fallbacks += 1
                    self.machine.metrics.counter("satin.chunked_fallbacks").inc()
            result = yield from check_area(
                self.image,
                self.store,
                core,
                area.offset,
                area.length,
                chunk_size=self.config.chunk_size,
                snapshot_buffer=self.snapshot_buffer,
                coalesce=coalesce,
            )
            if (
                not result.match
                and self.snapshot_buffer is not None
                and self.verify_snapshot_mismatch
            ):
                # The snapshot copy disagreed with the authorized digest.
                # Before accusing the kernel, re-scan the live memory
                # directly: if it verifies clean, the fault was in the
                # snapshot path and the round degrades instead of alarming
                # at integrity severity.
                self.snapshot_reverifies += 1
                self.machine.metrics.counter("satin.snapshot_reverifies").inc()
                direct = yield from check_area(
                    self.image,
                    self.store,
                    core,
                    area.offset,
                    area.length,
                    chunk_size=self.config.chunk_size,
                    snapshot_buffer=None,
                    coalesce=False,
                )
                if direct.match:
                    self.snapshot_suspected += 1
                    self.machine.metrics.counter("satin.snapshot_suspected").inc()
                    direct.degraded = True
                    direct.extra["snapshot_suspected"] = True
                    direct.extra["snapshot_digest"] = result.digest
                    self.alarms.raise_alarm(
                        AlarmRecord(
                            time=self.machine.sim.now,
                            area_index=area.index,
                            offset=area.offset,
                            length=area.length,
                            core_index=core.index,
                            round_index=round_index,
                            digest=result.digest,
                            expected=result.expected,
                            severity=SEVERITY_DEGRADED,
                            kind="snapshot_suspected",
                        )
                    )
                result = direct
            result.area_index = area.index
            result.round_index = round_index
            self.results.append(result)
            self._rounds_counter.inc()
            self._round_duration.observe(result.duration)
            self._scan_bytes.observe(float(area.length))
            if not result.match:
                self._mismatches_counter.inc()
                self.mismatch_count += 1
                self.alarms.raise_alarm(
                    AlarmRecord(
                        time=self.machine.sim.now,
                        area_index=area.index,
                        offset=area.offset,
                        length=area.length,
                        core_index=core.index,
                        round_index=round_index,
                        digest=result.digest,
                        expected=result.expected,
                    )
                )
            return result
        finally:
            if blocked:
                self._block_ns(core, False)

    # ------------------------------------------------------------------
    def _block_ns(self, core: Core, block: bool) -> None:
        """Configure NS-interrupt blocking for the round (SCR_EL3.IRQ)."""
        scr = core.registers.read("SCR_EL3", World.SECURE)
        if block:
            scr &= ~SCR_EL3_IRQ_BIT  # do not trap NS IRQs to EL3: they pend
        else:
            scr |= SCR_EL3_IRQ_BIT
        core.registers.write("SCR_EL3", scr, World.SECURE)
        self.machine.gic.set_ns_blocked(core.index, block)

    # ------------------------------------------------------------------
    def results_for_area(self, area_index: int) -> List[ScanResult]:
        return [r for r in self.results if r.area_index == area_index]

    def average_round_duration(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.duration for r in self.results) / len(self.results)
