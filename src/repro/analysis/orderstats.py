"""Order-statistics fast path: sampling the maximum of n i.i.d. draws.

If ``U ~ Uniform(0,1)`` then ``F^-1(U^(1/n))`` is distributed as the
maximum of ``n`` i.i.d. draws from a distribution with CDF ``F`` — one
quantile evaluation replaces ``n`` simulated samples.  The probing
threshold experiments (Table II, Figure 4) use this to avoid simulating
tens of millions of buffer reads; a dense short-window simulation
cross-checks the equivalence in the tests.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ReproError
from repro.sim.distributions import BoundedPareto, Distribution, inverse_cdf


def sample_max_of_n(dist: Distribution, n: int, rng: random.Random) -> float:
    """One draw of ``max(X_1, ..., X_n)`` for i.i.d. ``X_i ~ dist``."""
    if n <= 0:
        raise ReproError("n must be positive")
    u = rng.random() ** (1.0 / n)
    if isinstance(dist, BoundedPareto):
        return dist.inv_cdf(u)
    return inverse_cdf(dist, u)


def sample_maxima(
    dist: Distribution, n: int, rounds: int, rng: random.Random
) -> List[float]:
    """``rounds`` independent window maxima of ``n`` draws each."""
    return [sample_max_of_n(dist, n, rng) for _ in range(rounds)]


def expected_max_quantile(dist: Distribution, n: int, q: float = 0.5) -> float:
    """The q-quantile of the max of n draws (analytic cross-check).

    ``P(max <= x) = F(x)^n``; the q-quantile solves ``F(x) = q^(1/n)``.
    """
    if not 0.0 < q < 1.0:
        raise ReproError("q must be in (0, 1)")
    target = q ** (1.0 / n)
    if isinstance(dist, BoundedPareto):
        return dist.inv_cdf(target)
    return inverse_cdf(dist, target)
