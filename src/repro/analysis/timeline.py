"""Timeline reconstruction from the simulation trace.

Builds human-readable event timelines — world switches, introspection
rounds, prober detections, rootkit hide/restore transitions — from the
machine's :class:`~repro.sim.tracing.TraceRecorder`.  Used by the examples
to *show* the race of Figure 3 instead of describing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hw.platform import Machine

#: (category, message) pairs the timeline understands, with short labels.
_EVENT_LABELS = {
    ("monitor", "secure entry begins"): "core {core} -> secure world",
    ("monitor", "normal world resumed"): "core {core} -> normal world",
    ("satin", "round begins"): "round {round}: scanning area {area} on core {core}",
    ("satin", "round complete"): "round {round}: area {area} {verdict}",
    ("prober", "core suspected in secure world"):
        "prober: core {suspect} vanished (seen by core {observer})",
    ("prober", "suspected core reported again"):
        "prober: core {suspect} is back",
    ("rootkit", "traces hidden"): "rootkit: traces RESTORED (hidden)",
    ("rootkit", "traces re-planted"): "rootkit: traces re-planted (attacking)",
    ("evader", "recovery started"): "evader: recovery thread launched",
    ("evader", "proactive hide"): "evader: PROACTIVE hide (schedule predicted)",
    ("sync-introspection", "write blocked"):
        "sync introspection: write to page {page} BLOCKED",
}


@dataclass(frozen=True)
class TimelineEvent:
    """One labelled event."""

    time: float
    category: str
    label: str

    def render(self, origin: float = 0.0) -> str:
        return f"[{(self.time - origin) * 1e3:10.3f} ms] {self.label}"


def build_timeline(
    machine: Machine,
    start: float = 0.0,
    end: Optional[float] = None,
    categories: Optional[List[str]] = None,
) -> List[TimelineEvent]:
    """Extract labelled events from the machine trace, time-ordered."""
    horizon = end if end is not None else float("inf")
    events: List[TimelineEvent] = []
    for record in machine.trace.records():
        if not start <= record.time <= horizon:
            continue
        if categories is not None and record.category not in categories:
            continue
        template = _EVENT_LABELS.get((record.category, record.message))
        if template is None:
            continue
        fields = dict(record.fields)
        if (record.category, record.message) == ("satin", "round complete"):
            fields["verdict"] = "CLEAN" if fields.get("match") else "ALARM"
        try:
            label = template.format(**fields)
        except (KeyError, IndexError):
            label = f"{record.category}: {record.message}"
        events.append(TimelineEvent(record.time, record.category, label))
    events.sort(key=lambda e: e.time)
    return events


def render_timeline(
    events: List[TimelineEvent],
    origin: Optional[float] = None,
    limit: Optional[int] = None,
) -> str:
    """Render events as aligned text lines (times relative to ``origin``)."""
    if not events:
        return "(no events)"
    base = origin if origin is not None else events[0].time
    chosen = events if limit is None else events[:limit]
    lines = [event.render(base) for event in chosen]
    if limit is not None and len(events) > limit:
        lines.append(f"... ({len(events) - limit} more events)")
    return "\n".join(lines)


def round_timeline(machine: Machine, round_start: float, window: float = 0.05) -> str:
    """Convenience: the annotated story of one introspection round."""
    events = build_timeline(machine, start=round_start - window / 5,
                            end=round_start + window)
    return render_timeline(events, origin=round_start)
