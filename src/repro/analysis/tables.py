"""ASCII table rendering in the paper's notation.

The benchmark harness prints the same rows the paper's tables show, with
values formatted like ``2.61 x 10^-4 s`` so visual comparison against the
PDF is direct.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def sci(value: float, digits: int = 2, unit: str = "s") -> str:
    """Format ``value`` as the paper does: ``m.dd x 10^e [unit]``."""
    if value == 0:
        return f"0 {unit}".strip()
    exponent = int(math.floor(math.log10(abs(value))))
    mantissa = value / (10 ** exponent)
    # Guard against 9.9999 -> 10.0 rollover after rounding.
    if round(abs(mantissa), digits) >= 10:
        mantissa /= 10
        exponent += 1
    body = f"{mantissa:.{digits}f} x 10^{exponent}"
    return f"{body} {unit}".strip() if unit else body


def pct(value: float, digits: int = 3) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render a boxed ASCII table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(fill: str = "-", joint: str = "+") -> str:
        return joint + joint.join(fill * (w + 2) for w in widths) + joint

    def fmt(cells: Sequence[str]) -> str:
        padded = [f" {cell.ljust(widths[i])} " for i, cell in enumerate(cells)]
        return "|" + "|".join(padded) + "|"

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line("="))
    out.append(fmt(headers))
    out.append(line("="))
    for row in rows:
        out.append(fmt(row))
    out.append(line("-"))
    return "\n".join(out)


def render_comparison(
    title: str,
    rows: Sequence[Sequence[str]],
    value_label: str = "measured",
) -> str:
    """A paper-vs-measured table (quantity / paper / measured)."""
    return render_table(("quantity", "paper", value_label), rows, title=title)
