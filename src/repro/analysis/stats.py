"""Statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class Summary:
    """avg/max/min (the paper's table format) plus spread measures."""

    count: int
    average: float
    maximum: float
    minimum: float
    stdev: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Summary":
        if not samples:
            raise ReproError("cannot summarise zero samples")
        n = len(samples)
        mean = sum(samples) / n
        if n > 1:
            var = sum((x - mean) ** 2 for x in samples) / (n - 1)
        else:
            var = 0.0
        return cls(
            count=n,
            average=mean,
            maximum=max(samples),
            minimum=min(samples),
            stdev=math.sqrt(var),
        )

    @classmethod
    def merged(cls, parts: Sequence["Summary"]) -> "Summary":
        """Combine per-shard summaries into the whole-set summary.

        Uses the pairwise (Chan et al.) update for mean and M2, so merging
        K partial summaries matches summarising the concatenated samples
        (up to float rounding) — the invariant campaign shard aggregation
        relies on.
        """
        parts = [p for p in parts if p is not None]
        if not parts:
            raise ReproError("cannot merge zero summaries")
        count = 0
        mean = 0.0
        m2 = 0.0
        for part in parts:
            part_m2 = part.stdev ** 2 * (part.count - 1)
            delta = part.average - mean
            total = count + part.count
            m2 += part_m2 + delta * delta * count * part.count / total
            mean += delta * part.count / total
            count = total
        var = m2 / (count - 1) if count > 1 else 0.0
        return cls(
            count=count,
            average=mean,
            maximum=max(p.maximum for p in parts),
            minimum=min(p.minimum for p in parts),
            stdev=math.sqrt(var),
        )


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary + whiskers/outliers (Figure 4's box plot)."""

    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not samples:
        raise ReproError("cannot take a percentile of zero samples")
    if not 0.0 <= p <= 100.0:
        raise ReproError(f"percentile {p} out of [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # ordered[low] + delta*frac (not the two-product lerp) so equal
    # neighbours interpolate exactly and the result stays in range.
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def boxplot_stats(samples: Sequence[float]) -> BoxplotStats:
    """Tukey box plot statistics (1.5*IQR whiskers)."""
    q1 = percentile(samples, 25.0)
    median = percentile(samples, 50.0)
    q3 = percentile(samples, 75.0)
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    in_fence = [x for x in samples if low_fence <= x <= high_fence]
    outliers = tuple(sorted(x for x in samples if x < low_fence or x > high_fence))
    return BoxplotStats(
        q1=q1,
        median=median,
        q3=q3,
        whisker_low=min(in_fence) if in_fence else q1,
        whisker_high=max(in_fence) if in_fence else q3,
        outliers=outliers,
    )


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean (UnixBench's aggregate)."""
    if not samples:
        raise ReproError("cannot take a geometric mean of zero samples")
    if any(x <= 0 for x in samples):
        raise ReproError("geometric mean needs positive samples")
    return math.exp(sum(math.log(x) for x in samples) / len(samples))


def relative_error(measured: float, expected: float) -> float:
    """|measured - expected| / |expected| (EXPERIMENTS.md comparisons)."""
    if expected == 0:
        raise ReproError("expected value is zero")
    return abs(measured - expected) / abs(expected)


def ratios_within(samples: Sequence[float], lo: float, hi: float) -> float:
    """Fraction of samples within [lo, hi]."""
    if not samples:
        raise ReproError("no samples")
    hits = sum(1 for x in samples if lo <= x <= hi)
    return hits / len(samples)


# ---------------------------------------------------------------------------
# Campaign shard aggregation
# ---------------------------------------------------------------------------


def _z_score(confidence: float) -> float:
    """Two-sided standard-normal quantile for a confidence level in (0, 1).

    Inverted from ``math.erf`` by bisection — exact enough (1e-12) for CI
    reporting without dragging in scipy.
    """
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must be in (0, 1), got {confidence}")
    target = confidence  # P(|Z| <= z) = erf(z / sqrt(2))
    lo, hi = 0.0, 40.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if math.erf(mid / math.sqrt(2.0)) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def mean_ci(samples: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the mean."""
    summary = Summary.of(samples)
    if summary.count < 2:
        return (summary.average, summary.average)
    half = _z_score(confidence) * summary.stdev / math.sqrt(summary.count)
    return (summary.average - half, summary.average + half)


def merge_sorted_samples(shards: Iterable[Sequence[float]]) -> List[float]:
    """Merge per-shard sample sets into one sorted whole.

    Each shard is sorted independently, then k-way merged, so order
    statistics (percentiles, boxplots) over the merge equal those over
    the concatenated samples.
    """
    return list(heapq.merge(*(sorted(shard) for shard in shards)))
