"""Statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class Summary:
    """avg/max/min (the paper's table format) plus spread measures."""

    count: int
    average: float
    maximum: float
    minimum: float
    stdev: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Summary":
        if not samples:
            raise ReproError("cannot summarise zero samples")
        n = len(samples)
        mean = sum(samples) / n
        if n > 1:
            var = sum((x - mean) ** 2 for x in samples) / (n - 1)
        else:
            var = 0.0
        return cls(
            count=n,
            average=mean,
            maximum=max(samples),
            minimum=min(samples),
            stdev=math.sqrt(var),
        )


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary + whiskers/outliers (Figure 4's box plot)."""

    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not samples:
        raise ReproError("cannot take a percentile of zero samples")
    if not 0.0 <= p <= 100.0:
        raise ReproError(f"percentile {p} out of [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def boxplot_stats(samples: Sequence[float]) -> BoxplotStats:
    """Tukey box plot statistics (1.5*IQR whiskers)."""
    q1 = percentile(samples, 25.0)
    median = percentile(samples, 50.0)
    q3 = percentile(samples, 75.0)
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    in_fence = [x for x in samples if low_fence <= x <= high_fence]
    outliers = tuple(sorted(x for x in samples if x < low_fence or x > high_fence))
    return BoxplotStats(
        q1=q1,
        median=median,
        q3=q3,
        whisker_low=min(in_fence) if in_fence else q1,
        whisker_high=max(in_fence) if in_fence else q3,
        outliers=outliers,
    )


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean (UnixBench's aggregate)."""
    if not samples:
        raise ReproError("cannot take a geometric mean of zero samples")
    if any(x <= 0 for x in samples):
        raise ReproError("geometric mean needs positive samples")
    return math.exp(sum(math.log(x) for x in samples) / len(samples))


def relative_error(measured: float, expected: float) -> float:
    """|measured - expected| / |expected| (EXPERIMENTS.md comparisons)."""
    if expected == 0:
        raise ReproError("expected value is zero")
    return abs(measured - expected) / abs(expected)


def ratios_within(samples: Sequence[float], lo: float, hi: float) -> float:
    """Fraction of samples within [lo, hi]."""
    if not samples:
        raise ReproError("no samples")
    hits = sum(1 for x in samples if lo <= x <= hi)
    return hits / len(samples)
