"""Statistics, table rendering, and order-statistics helpers."""

from repro.analysis.orderstats import (
    expected_max_quantile,
    sample_max_of_n,
    sample_maxima,
)
from repro.analysis.stats import (
    BoxplotStats,
    Summary,
    boxplot_stats,
    geometric_mean,
    percentile,
    ratios_within,
    relative_error,
)
from repro.analysis.tables import pct, render_comparison, render_table, sci
from repro.analysis.timeline import (
    TimelineEvent,
    build_timeline,
    render_timeline,
    round_timeline,
)

__all__ = [
    "BoxplotStats",
    "Summary",
    "TimelineEvent",
    "boxplot_stats",
    "build_timeline",
    "expected_max_quantile",
    "geometric_mean",
    "pct",
    "percentile",
    "ratios_within",
    "relative_error",
    "render_comparison",
    "render_table",
    "render_timeline",
    "round_timeline",
    "sample_max_of_n",
    "sample_maxima",
    "sci",
]
