"""Closed-form race-model solver (Eq. 1/2, WCRT-style envelopes).

The E7 Monte-Carlo layer (:func:`repro.experiments.race_analysis.
run_race_analysis`) draws the race's quantities from calibrated
distributions and counts escapes.  This module answers the same
questions directly from the equations, two ways:

* **Envelopes** — evaluate Eq. 2 at the extreme points of each
  distribution's support, giving hard best/worst-case bounds that
  contain every Monte-Carlo estimate (the WCRT-style analysis: no
  sampled timing tuple can fall outside its distribution's support, so
  the per-trial escape probability is bracketed pathwise).
* **Quadrature** — a small tensor-product midpoint rule in quantile
  space over the sampled distributions, with the inner integral over
  the uniform wake-up delay done in closed form (the escape probability
  is piecewise linear in ``tns_sched``).  This lands within Monte-Carlo
  noise of the 20k-trial E7 estimate at a few hundred evaluations.

Conventions mirror the E7 recipe exactly: the checker runs on the last
cluster (A57 on Juno), ``tns_sched ~ U(0, tsleep)``, the probing
threshold is the calibrated constant, and the trace position is uniform
over the scanned span.  A trace at position ``S`` escapes iff

    Ts_switch + S * Ts_1byte > Tns_sched + Tns_threshold + Tns_recover

so conditioned on the timing tuple the escape probability over a span
of ``K`` bytes is ``(K - clamp(B, 0, K)) / K`` with
``B = (Tns_sched + Tns_threshold + Tns_recover - Ts_switch) / Ts_1byte``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import MachineConfig
from repro.errors import ConfigurationError
from repro.sim.distributions import Distribution, inverse_cdf

__all__ = [
    "Interval",
    "RaceModel",
    "conditional_escape_probability",
    "escape_probability_bounds",
    "escape_probability_estimate",
    "detection_latency_bounds",
    "scan_overhead_bounds",
    "safe_area_bounds",
    "PresetSolution",
    "solve_preset",
]


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` — the solver's bound type."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (self.lo <= self.hi):
            raise ConfigurationError(
                f"interval lower bound {self.lo!r} exceeds upper {self.hi!r}"
            )

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def contains(self, x: float, slack: float = 0.0) -> bool:
        """Is ``x`` inside the interval (widened by ``slack`` each side)?"""
        return self.lo - slack <= x <= self.hi + slack

    def straddles(self, threshold: float) -> bool:
        """Does the interval contain ``threshold`` strictly inside?

        A straddled decision threshold means the envelope alone cannot
        answer the question — the config is *contested* and needs
        simulation seeds.
        """
        return self.lo < threshold < self.hi

    def overlaps(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def as_dict(self) -> dict:
        return {"lo": self.lo, "hi": self.hi}


def _support(dist: Distribution) -> Tuple[float, float]:
    lo, hi = dist.support()
    if lo > hi:  # defensive; distributions guarantee lo <= hi
        lo, hi = hi, lo
    return lo, hi


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RaceModel:
    """The race's quantities for one platform, as distributions.

    Mirrors what ``run_race_analysis`` samples per trial: the checker's
    world-switch / per-byte / recovery timing from the *last* cluster
    (the one the secure checker runs on), a uniform wake-up delay in
    ``[0, tsleep]``, and the constant probing threshold.
    """

    ts_switch: Distribution
    ts_1byte: Distribution
    tns_recover: Distribution
    tsleep: float
    tns_threshold: float
    kernel_size: int

    @classmethod
    def from_machine(cls, machine_cfg: MachineConfig) -> "RaceModel":
        timing = machine_cfg.clusters[-1].timing
        return cls(
            ts_switch=timing.world_switch,
            ts_1byte=timing.hash_byte,
            tns_recover=timing.recover_trace_8b,
            tsleep=machine_cfg.prober.tsleep,
            tns_threshold=machine_cfg.prober.detect_threshold,
            kernel_size=machine_cfg.kernel.image_size,
        )

    def span_or_default(self, span: Optional[float]) -> float:
        value = self.kernel_size if span is None else span
        if value <= 0:
            raise ConfigurationError("scan span must be positive")
        return float(value)


# ----------------------------------------------------------------------
def conditional_escape_probability(
    span: float,
    ts_switch: float,
    ts_1byte: float,
    tns_sched: float,
    tns_threshold: float,
    tns_recover: float,
) -> float:
    """P(escape | timing tuple) for a uniform trace position over ``span``.

    This is the Rao–Blackwellised per-trial quantity: the Monte-Carlo
    indicator ``evasion_succeeds(params, position)`` has exactly this
    conditional expectation, so its average over trials estimates the
    same escape probability with strictly lower variance.
    """
    if ts_1byte <= 0:
        # Infinitely fast checker: every position is reached instantly
        # after the switch; the attacker escapes only via the switch cost.
        return 1.0 if ts_switch > tns_sched + tns_threshold + tns_recover else 0.0
    bound = (tns_sched + tns_threshold + tns_recover - ts_switch) / ts_1byte
    clamped = min(max(bound, 0.0), span)
    return (span - clamped) / span


def escape_probability_bounds(
    model: RaceModel, span: Optional[float] = None
) -> Interval:
    """Hard envelope on the escape probability over a ``span``-byte scan.

    Evaluated at the support corners of every distribution: the escape
    probability is monotone decreasing in the Eq. 2 bound ``B``, which
    is monotone in each timing quantity, so the extremes of ``B`` (and
    hence of the escape probability) occur at support endpoints.
    """
    span = model.span_or_default(span)
    sw_lo, sw_hi = _support(model.ts_switch)
    t1b_lo, t1b_hi = _support(model.ts_1byte)
    rc_lo, rc_hi = _support(model.tns_recover)
    thr = model.tns_threshold

    # Largest B (most protection): slowest attacker, fastest checker.
    num_hi = model.tsleep + thr + rc_hi - sw_lo
    if t1b_lo > 0:
        b_hi = num_hi / t1b_lo
    else:
        b_hi = math.inf if num_hi > 0 else 0.0
    # Smallest B (least protection): fastest attacker, slowest checker.
    b_lo = (0.0 + thr + rc_lo - sw_hi) / t1b_hi if t1b_hi > 0 else 0.0

    escape_lo = (span - min(max(b_hi, 0.0), span)) / span
    escape_hi = (span - min(max(b_lo, 0.0), span)) / span
    return Interval(lo=escape_lo, hi=escape_hi)


def _quantile_nodes(dist: Distribution, nodes: int) -> List[float]:
    """Midpoint-rule nodes in quantile space (equal-mass strata)."""
    lo, hi = _support(dist)
    if lo == hi:
        return [lo]
    return [inverse_cdf(dist, (i + 0.5) / nodes) for i in range(nodes)]


def _mean_escape_over_sched(
    span: float,
    ts_switch: float,
    ts_1byte: float,
    tns_threshold: float,
    tns_recover: float,
    tsleep: float,
) -> float:
    """E[P(escape)] over ``tns_sched ~ U(0, tsleep)``, in closed form.

    With the other quantities fixed, ``B(s) = (s + c) / t1b`` is linear
    in the wake-up delay ``s`` (``c = thr + recover - switch``), so the
    clamped escape probability ``clamp(1 - B(s)/span, 0, 1)`` is
    piecewise linear and integrates exactly.
    """
    if ts_1byte <= 0:
        base = conditional_escape_probability(
            span, ts_switch, ts_1byte, 0.0, tns_threshold, tns_recover
        )
        return base
    c = tns_threshold + tns_recover - ts_switch
    if tsleep <= 0:
        return conditional_escape_probability(
            span, ts_switch, ts_1byte, 0.0, tns_threshold, tns_recover
        )
    d = span * ts_1byte  # seconds to scan the whole span
    # f(s) = 1 - (s + c)/d, clamped to [0, 1]; f >= 1 for s <= -c,
    # f <= 0 for s >= d - c.
    a = min(max(-c, 0.0), tsleep)  # plateau at 1 ends here
    b = min(max(d - c, a), tsleep)  # linear part ends here
    # integral of f over [a, b]:
    linear = (b - a) - ((b + c) ** 2 - (a + c) ** 2) / (2.0 * d)
    return (a + linear) / tsleep


def escape_probability_estimate(
    model: RaceModel, span: Optional[float] = None, nodes: int = 12
) -> float:
    """Quadrature estimate of the escape probability (not a bound).

    Tensor-product midpoint rule over the three sampled distributions
    with the wake-up-delay dimension integrated in closed form.  At the
    default 12 nodes per dimension this is ~1.7k evaluations and agrees
    with the 20k-trial E7 Monte-Carlo to well under a percentage point.
    """
    span = model.span_or_default(span)
    sw_nodes = _quantile_nodes(model.ts_switch, nodes)
    t1b_nodes = _quantile_nodes(model.ts_1byte, nodes)
    rc_nodes = _quantile_nodes(model.tns_recover, nodes)
    total = 0.0
    for sw in sw_nodes:
        for t1b in t1b_nodes:
            for rc in rc_nodes:
                total += _mean_escape_over_sched(
                    span, sw, t1b, model.tns_threshold, rc, model.tsleep
                )
    return total / (len(sw_nodes) * len(t1b_nodes) * len(rc_nodes))


# ----------------------------------------------------------------------
def safe_area_bounds(model: RaceModel) -> Interval:
    """Envelope on the Eq. 2 / Section V-B safe-area-size bound (bytes).

    ``hi`` is the bound under the friendliest timings (slow attacker,
    fast checker), ``lo`` under the harshest.  An area no larger than
    ``lo`` is safe for *every* timing draw inside the supports.
    """
    sw_lo, sw_hi = _support(model.ts_switch)
    t1b_lo, t1b_hi = _support(model.ts_1byte)
    rc_lo, rc_hi = _support(model.tns_recover)
    thr = model.tns_threshold
    num_hi = model.tsleep + thr + rc_hi - sw_lo
    num_lo = 0.0 + thr + rc_lo - sw_hi
    hi = num_hi / t1b_lo if t1b_lo > 0 else (math.inf if num_hi > 0 else 0.0)
    lo = max(num_lo / t1b_hi if t1b_hi > 0 else 0.0, 0.0)
    return Interval(lo=lo, hi=max(hi, lo))


def detection_latency_bounds(
    model: RaceModel,
    area_count: int,
    tgoal: float,
    deviation_fraction: float = 1.0,
    area_size: Optional[float] = None,
) -> Interval:
    """Envelope on the gap between consecutive scans of one fixed area.

    SATIN scans one area per round at a base period ``tp = tgoal / m``
    with each round's start randomised inside ``±deviation_fraction*tp``
    and the area order re-randomised per pass (Section V-C), so
    consecutive visits to the same area are nominally one full pass
    (``m * tp``) apart:

    * best case — the area drawn last in one pass and first in the
      next, one round apart, with both deviations closing the gap:
      ``max(0, (1 - 2d) * tp)``;
    * worst case — drawn first in one pass and last in the next
      (``2m - 1`` rounds), both deviations widening the gap, plus the
      scan itself.

    The E9 "avg area gap" metric is the empirical mean of exactly this
    quantity, so the envelope must contain it (pathwise: every single
    gap is inside the envelope, hence so is any average of gaps).
    """
    if area_count <= 0:
        raise ConfigurationError("area_count must be positive")
    if tgoal <= 0:
        raise ConfigurationError("tgoal must be positive")
    tp = tgoal / area_count
    d = max(deviation_fraction, 0.0)
    if area_size is None:
        area_size = model.kernel_size / area_count
    _, t1b_hi = _support(model.ts_1byte)
    _, sw_hi = _support(model.ts_switch)
    scan_cost_hi = area_size * t1b_hi + 2.0 * sw_hi

    lo = max(0.0, (1.0 - 2.0 * d) * tp)
    hi = (2.0 * area_count - 1.0 + 2.0 * d) * tp + scan_cost_hi
    return Interval(lo=lo, hi=hi)


def scan_overhead_bounds(
    model: RaceModel, area_count: int, tgoal: float
) -> Interval:
    """Envelope on the secure-world CPU fraction of one full pass.

    One pass hashes the whole kernel once and pays two world switches
    per round; spread over ``tgoal`` seconds that is the steady-state
    overhead SATIN charges the platform.
    """
    if area_count <= 0 or tgoal <= 0:
        raise ConfigurationError("area_count and tgoal must be positive")
    t1b_lo, t1b_hi = _support(model.ts_1byte)
    sw_lo, sw_hi = _support(model.ts_switch)
    busy_lo = model.kernel_size * t1b_lo + 2.0 * area_count * sw_lo
    busy_hi = model.kernel_size * t1b_hi + 2.0 * area_count * sw_hi
    return Interval(lo=busy_lo / tgoal, hi=busy_hi / tgoal)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PresetSolution:
    """Everything the planner needs to know about one preset, solved."""

    preset: str
    model: RaceModel
    #: whole-kernel escape probability envelope (Eq. 2 corners).
    escape: Interval
    #: quadrature point estimate of the same quantity.
    escape_estimate: float
    #: safe-area-size envelope in bytes.
    safe_area: Interval
    #: is the envelope unable to settle the decision threshold?
    contested: bool

    def as_dict(self) -> dict:
        return {
            "preset": self.preset,
            "escape": self.escape.as_dict(),
            "escape_estimate": self.escape_estimate,
            "safe_area": self.safe_area.as_dict(),
            "contested": self.contested,
        }


#: The paper's headline claim — ~90% of the kernel unprotected — is the
#: decision threshold E7-class questions are judged against.
DECISION_THRESHOLD = 0.90


def solve_preset(
    preset: str,
    machine_cfg: MachineConfig,
    decision_threshold: float = DECISION_THRESHOLD,
    nodes: int = 12,
) -> PresetSolution:
    """Solve the whole-kernel race for one preset's machine config."""
    model = RaceModel.from_machine(machine_cfg)
    escape = escape_probability_bounds(model)
    estimate = escape_probability_estimate(model, nodes=nodes)
    return PresetSolution(
        preset=preset,
        model=model,
        escape=escape,
        escape_estimate=estimate,
        safe_area=safe_area_bounds(model),
        contested=escape.straddles(decision_threshold),
    )
