"""Analytical race-model solver and adaptive campaign planner.

Eq. 1/2 of the SATIN paper are closed-form; this package answers
E7/E9-class questions from the equations first and spends Monte-Carlo
seeds only where the closed form is uncertain:

* :mod:`repro.analysis.planning.solver` — WCRT-style best/worst-case
  envelopes and a fast quadrature over the calibrated timing
  distributions (win probability, escape probability, detection-latency
  bounds per area size / wake-up law).
* :mod:`repro.analysis.planning.planner` — sequential-confidence-interval
  campaign driver (``repro campaign --adaptive --ci-width W``) that stops
  dispatching seeds the moment the target CI is met, allocating extra
  rounds to configs the solver flags as contested.
* :mod:`repro.analysis.planning.search` — ``repro plan``: parameter
  search against an overhead budget using solver bounds first and short
  simulations only to break ties.
"""

from repro.analysis.planning.solver import (
    Interval,
    RaceModel,
    detection_latency_bounds,
    escape_probability_bounds,
    escape_probability_estimate,
    solve_preset,
)

__all__ = [
    "Interval",
    "RaceModel",
    "detection_latency_bounds",
    "escape_probability_bounds",
    "escape_probability_estimate",
    "solve_preset",
]
