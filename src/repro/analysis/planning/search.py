"""``repro plan`` — search SATIN parameters against an overhead budget.

The grid crosses platform presets (the core set: which cluster scans and
how fast), scan-period goals ``tgoal``, wake-up deviation fractions (the
wake-up law of Section V-C) and partition modes (the area count: one
area per System.map section, greedily packed areas, or the whole-kernel
baseline).  Every candidate is evaluated **analytically first** — the
real partitioner supplies exact area counts/sizes, the closed-form
solver supplies overhead and detection-latency envelopes — and a
candidate is feasible when

* every area respects the Eq. 2 safe-area bound the engine itself
  enforces at install time,
* one round's worst-case scan fits inside the round period, and
* the worst-case steady-state overhead stays inside the budget.

Feasible candidates are ranked by worst-case detection latency (then
worst-case overhead, then the candidate tuple, so ties break
deterministically).  Simulation enters only to split candidates whose
latency envelopes overlap the winner's: ``--tie-break-seeds N`` runs a
short E9 campaign per contested candidate and re-ranks them on the
measured mean area gap.  With ``N = 0`` (the default) the answer is
purely analytical and costs milliseconds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.planning.solver import (
    Interval,
    RaceModel,
    detection_latency_bounds,
    scan_overhead_bounds,
)
from repro.config import MachineConfig, preset_config
from repro.core.race import RaceParameters, max_safe_area_size
from repro.core.areas import build_partition
from repro.errors import CampaignError
from repro.kernel.systemmap import SystemMap

#: Partition modes the search considers by default; "whole" is the
#: paper's losing baseline and is only included when asked for.
DEFAULT_PARTITIONS = ("sections", "packed")
DEFAULT_TGOALS = (76.0, 152.0)
DEFAULT_DEVIATIONS = (0.5, 1.0)
DEFAULT_PRESETS = ("juno_r1",)
DEFAULT_BUDGET = 0.002  # max secure-world CPU fraction


@dataclass(frozen=True)
class PlanCandidate:
    """One point of the search grid."""

    preset: str
    tgoal: float
    deviation_fraction: float
    partition_mode: str

    def satin_overrides(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "tgoal": self.tgoal,
            "deviation_fraction": self.deviation_fraction,
            "partition_mode": self.partition_mode,
        }
        if self.partition_mode == "packed":
            # The engine refuses packed partitioning without an explicit
            # bound; pin it to the same Eq. 2 value the analytic
            # evaluation used, so simulation sees the evaluated areas.
            out["max_area_size"] = max_safe_area_size(RaceParameters())
        return out

    def label(self) -> str:
        return (
            f"{self.preset}/{self.partition_mode}"
            f"/tgoal={self.tgoal:g}/dev={self.deviation_fraction:g}"
        )


def evaluate_candidate(
    candidate: PlanCandidate,
    machine_cfg: MachineConfig,
    overhead_budget: float,
) -> Dict[str, Any]:
    """Solver verdict for one candidate — no simulation involved."""
    model = RaceModel.from_machine(machine_cfg)
    bound = max_safe_area_size(RaceParameters())
    system_map = SystemMap(
        total=machine_cfg.kernel.image_size,
        count=machine_cfg.kernel.section_count,
    )
    max_size = None if candidate.partition_mode == "whole" else bound
    areas = build_partition(
        system_map, mode=candidate.partition_mode, max_area_size=max_size
    )
    area_count = len(areas)
    largest_area = max(area.length for area in areas)
    tp = candidate.tgoal / area_count

    gap = detection_latency_bounds(
        model,
        area_count=area_count,
        tgoal=candidate.tgoal,
        deviation_fraction=candidate.deviation_fraction,
        area_size=largest_area,
    )
    overhead = scan_overhead_bounds(model, area_count, candidate.tgoal)

    _, t1b_hi = model.ts_1byte.support()
    _, sw_hi = model.ts_switch.support()
    scan_cost_hi = largest_area * t1b_hi + 2.0 * sw_hi

    reasons: List[str] = []
    if largest_area > bound:
        reasons.append(
            f"largest area {largest_area:,} B exceeds the Eq. 2 bound "
            f"{bound:,} B (attacker can hide mid-scan)"
        )
    if scan_cost_hi >= tp:
        reasons.append(
            f"worst-case round scan {scan_cost_hi:.3g}s overruns the "
            f"round period {tp:.3g}s"
        )
    if overhead.hi > overhead_budget:
        reasons.append(
            f"worst-case overhead {overhead.hi:.3g} exceeds budget "
            f"{overhead_budget:.3g}"
        )

    return {
        "candidate": {
            "preset": candidate.preset,
            "tgoal": candidate.tgoal,
            "deviation_fraction": candidate.deviation_fraction,
            "partition_mode": candidate.partition_mode,
        },
        "label": candidate.label(),
        "area_count": area_count,
        "largest_area": largest_area,
        "area_bound": bound,
        "round_period": tp,
        "feasible": not reasons,
        "infeasible_reasons": reasons,
        "detection_latency": gap.as_dict(),
        "expected_latency": area_count * tp,
        "overhead": overhead.as_dict(),
    }


def _rank_key(report: Dict[str, Any]):
    return (
        report["detection_latency"]["hi"],
        report["overhead"]["hi"],
        report["label"],
    )


def _contested_with(
    winner: Dict[str, Any], feasible: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Feasible candidates whose latency envelope overlaps the winner's."""
    w = Interval(**winner["detection_latency"])
    out = []
    for report in feasible:
        if report is winner:
            continue
        if w.overlaps(Interval(**report["detection_latency"])):
            out.append(report)
    return out


def _simulate_gap(
    candidate: Dict[str, Any],
    seeds: Sequence[int],
    cache_dir: str,
) -> Optional[float]:
    """Measured mean "avg area gap" from a short E9 campaign."""
    from repro.campaign.runner import CampaignSpec, run_campaign

    spec = CampaignSpec(
        experiment_id="E9",
        seeds=list(seeds),
        presets=(candidate["preset"],),
        satin=PlanCandidate(
            candidate["preset"],
            candidate["tgoal"],
            candidate["deviation_fraction"],
            candidate["partition_mode"],
        ).satin_overrides(),
        jobs=0,
        cache_dir=cache_dir,
        resume=True,
    )
    result = run_campaign(spec, progress=False)
    samples: List[float] = []
    for record in result.records:
        for row in record["payload"].get("comparisons", []):
            if row["quantity"] == "avg area gap":
                measured = row["measured"]
                if isinstance(measured, (int, float)):
                    samples.append(float(measured))
    if not samples:
        return None
    return sum(samples) / len(samples)


def search_plan(
    presets: Sequence[str] = DEFAULT_PRESETS,
    tgoals: Sequence[float] = DEFAULT_TGOALS,
    deviations: Sequence[float] = DEFAULT_DEVIATIONS,
    partitions: Sequence[str] = DEFAULT_PARTITIONS,
    overhead_budget: float = DEFAULT_BUDGET,
    tie_break_seeds: int = 0,
    tie_break_top: int = 3,
    seed_base: int = 2019,
    cache_dir: str = ".repro-cache",
) -> Dict[str, Any]:
    """Run the full search; returns a deterministic JSON-safe report."""
    if overhead_budget <= 0:
        raise CampaignError("overhead budget must be positive")
    candidates = [
        PlanCandidate(preset, tgoal, deviation, partition)
        for preset, tgoal, deviation, partition in itertools.product(
            presets, tgoals, deviations, partitions
        )
    ]
    if not candidates:
        raise CampaignError("plan search needs a non-empty grid")

    reports = []
    for candidate in candidates:
        machine_cfg = preset_config(candidate.preset, seed=seed_base)
        reports.append(
            evaluate_candidate(candidate, machine_cfg, overhead_budget)
        )
    reports.sort(key=_rank_key)

    feasible = [report for report in reports if report["feasible"]]
    out: Dict[str, Any] = {
        "grid": {
            "presets": list(presets),
            "tgoals": [float(t) for t in tgoals],
            "deviations": [float(d) for d in deviations],
            "partitions": list(partitions),
        },
        "overhead_budget": overhead_budget,
        "candidates": reports,
        "feasible": len(feasible),
        "winner": None,
        "contested": [],
        "tie_break": None,
    }
    if not feasible:
        return out

    winner = feasible[0]
    contested = _contested_with(winner, feasible)
    out["contested"] = [report["label"] for report in contested]

    if tie_break_seeds > 0 and contested:
        seeds = list(range(seed_base, seed_base + tie_break_seeds))
        measured: Dict[str, Optional[float]] = {}
        # Simulation is the expensive step: only the closest contenders
        # (by expected latency, then label for determinism) get seeds.
        closest = sorted(
            contested, key=lambda r: (r["expected_latency"], r["label"])
        )[: max(tie_break_top, 0)]
        pool = [winner] + closest
        for report in pool:
            measured[report["label"]] = _simulate_gap(
                report["candidate"], seeds, cache_dir
            )
        ranked = sorted(
            pool,
            key=lambda r: (
                measured[r["label"]] is None,  # unmeasured last
                measured[r["label"]] if measured[r["label"]] is not None else 0.0,
                r["label"],
            ),
        )
        winner = ranked[0]
        out["tie_break"] = {
            "seeds": seeds,
            "quantity": "avg area gap",
            "measured": measured,
        }
    out["winner"] = winner
    return out


def render_plan(report: Dict[str, Any]) -> str:
    """Human rendering of a search report."""
    lines = [
        f"# repro plan — {len(report['candidates'])} candidate(s), "
        f"overhead budget {report['overhead_budget']:g}",
    ]
    for entry in report["candidates"]:
        gap = entry["detection_latency"]
        ov = entry["overhead"]
        status = "ok " if entry["feasible"] else "INFEASIBLE"
        lines.append(
            f"  [{status}] {entry['label']}: {entry['area_count']} areas "
            f"(largest {entry['largest_area']:,} B), latency "
            f"[{gap['lo']:.4g}, {gap['hi']:.4g}]s "
            f"(expected {entry['expected_latency']:.4g}s), overhead "
            f"[{ov['lo']:.3g}, {ov['hi']:.3g}]"
        )
        for reason in entry["infeasible_reasons"]:
            lines.append(f"      - {reason}")
    if report["winner"] is None:
        lines.append("no feasible candidate — raise the overhead budget "
                     "or widen the grid")
        return "\n".join(lines)
    lines.append(f"winner: {report['winner']['label']}")
    if report["contested"]:
        lines.append(
            "contested (latency envelopes overlap the winner's): "
            + ", ".join(report["contested"])
        )
    tie = report.get("tie_break")
    if tie:
        lines.append(
            f"tie-break over {len(tie['seeds'])} seed(s) on "
            f"{tie['quantity']!r}:"
        )
        for label, value in tie["measured"].items():
            shown = "n/a" if value is None else f"{value:.4g}s"
            lines.append(f"  {label}: {shown}")
    return "\n".join(lines)
