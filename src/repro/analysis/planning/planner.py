"""Adaptive campaign driver: sequential confidence intervals + importance
allocation.

``repro campaign --adaptive --ci-width W`` runs the campaign in rounds
instead of dispatching the whole seed grid up front.  After every round
the planner recomputes the 95% confidence interval of the campaign's
headline quantity per preset and stops dispatching seeds for any preset
whose interval is already narrower than the target.  Presets the
analytical solver flags as *contested* (their Eq. 2 envelope straddles
the decision threshold, so the closed form cannot settle the question)
receive double-sized rounds — the remaining budget concentrates where
simulation is actually needed.

Determinism contract: every stopping decision is a pure function of
(config, seed stream, CI target).  Rounds are barriers; seeds are
consumed as prefixes of the spec's seed list in spec order; widths are
computed from ok-records in parent task order.  A re-run — fresh cache,
warm cache, serial or ``--jobs N`` — therefore consumes the same seeds
and produces a byte-identical manifest fingerprint.  Planner provenance
(seeds saved, stopping round, contested set) is recorded in the
manifest's ``planner`` section, *outside* the fingerprint view.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from repro.analysis.planning.solver import DECISION_THRESHOLD, solve_preset
from repro.analysis.stats import mean_ci
from repro.campaign.trials import build_trial_config
from repro.errors import CampaignError
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import merge_snapshots

#: Confidence level of the sequential intervals (matches the campaign
#: tables' ``95% ci`` column, so "same CI width" means the same thing).
CONFIDENCE = 0.95


class _TaskSlice:
    """A campaign-shaped proxy dispatching a subset of the parent's tasks.

    ``run_sweep`` only needs ``trial_tasks()``/``campaign_id()`` plus the
    spec's execution attributes, so delegating everything else to the
    parent lets each planner round run through the unmodified sweep
    machinery against one shared store.
    """

    def __init__(self, parent, tasks: Sequence[Dict[str, Any]]):
        self._parent = parent
        self._tasks = list(tasks)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._parent, name)

    def trial_tasks(self) -> List[Dict[str, Any]]:
        return [dict(task) for task in self._tasks]

    def campaign_id(self) -> str:
        return self._parent.campaign_id()


class _PlannedView(_TaskSlice):
    """The consumed slice of the grid, for rendering and the manifest.

    ``seeds`` shadows the parent's so the manifest's spec section and the
    rendered header describe what actually ran (the consumed prefix of
    the seed stream), and ``trial_tasks()`` returns exactly the consumed
    tasks in parent task order — the fingerprint view then covers the
    consumed trials and nothing else.
    """

    def __init__(self, parent, tasks: Sequence[Dict[str, Any]], seeds: Sequence[int]):
        super().__init__(parent, tasks)
        self.seeds = list(seeds)


def _samples_for(
    records: Sequence[Dict[str, Any]], quantity: str
) -> List[float]:
    out: List[float] = []
    for record in records:
        for row in record["payload"].get("comparisons", []):
            if row["quantity"] != quantity:
                continue
            measured = row["measured"]
            if isinstance(measured, (int, float)) and not isinstance(measured, bool):
                out.append(float(measured))
    return out


def _ci_width(records: Sequence[Dict[str, Any]], quantity: str) -> Optional[float]:
    """Width of the CONFIDENCE-level mean CI, or None below two samples."""
    samples = _samples_for(records, quantity)
    if len(samples) < 2:
        return None
    lo, hi = mean_ci(samples, confidence=CONFIDENCE)
    return hi - lo


def select_quantity(
    records: Sequence[Dict[str, Any]], explicit: Optional[str] = None
) -> Optional[str]:
    """The comparison quantity the sequential CI is computed on.

    Explicit names are validated against the records.  Otherwise the
    first quantity (in the experiment's own comparison order) with at
    least two numeric samples and nonzero spread wins — constants like a
    fixed round count would stop every preset instantly and teach
    nothing.  Falls back to the first numeric quantity, then ``None``.
    """
    ordered: List[str] = []
    for record in records:
        for row in record["payload"].get("comparisons", []):
            if row["quantity"] not in ordered:
                ordered.append(row["quantity"])
    if explicit is not None:
        if explicit not in ordered:
            raise CampaignError(
                f"--ci-quantity {explicit!r} is not a comparison quantity of "
                f"this experiment (have: {', '.join(ordered) or 'none'})"
            )
        return explicit
    fallback: Optional[str] = None
    for quantity in ordered:
        samples = _samples_for(records, quantity)
        if len(samples) >= 2 and fallback is None:
            fallback = quantity
        if len(samples) >= 2 and max(samples) > min(samples):
            return quantity
    return fallback


def _solve_contested(spec) -> Dict[str, Any]:
    """Solver verdict per preset: contested => spend seeds there.

    A preset whose machine config cannot be solved (exotic overrides,
    missing timing) is treated as contested — when the closed form is
    unavailable, simulation is by definition the only evidence.
    """
    verdicts: Dict[str, Any] = {}
    for preset in spec.presets:
        try:
            config = build_trial_config(
                int(spec.seeds[0]), preset=preset, satin=spec.satin
            )
            verdicts[preset] = solve_preset(preset, config)
        except Exception:  # pragma: no cover - defensive
            verdicts[preset] = None
    return verdicts


def run_adaptive_campaign(
    spec,
    stream: Optional[TextIO] = None,
    progress: Union[bool, str] = True,
    trial_fn: Optional[str] = None,
    observer=None,
    cancel_event: Optional[threading.Event] = None,
):
    """Run one campaign adaptively; returns a ``CampaignResult``.

    Drop-in replacement for the fixed-grid path of
    :func:`repro.campaign.runner.run_campaign` — same result type, same
    manifest location — but seed dispatch stops per preset the moment
    the target CI width is met (never before ``min_seeds``).
    """
    from repro.campaign.runner import (
        TRIAL_FN,
        CampaignResult,
        render_campaign,
        run_sweep,
    )

    if trial_fn is None:
        trial_fn = TRIAL_FN
    if spec.ci_width is None or spec.ci_width <= 0:
        raise CampaignError("adaptive campaign needs --ci-width > 0")

    started_wall = time.monotonic()
    out = stream if stream is not None else sys.stderr

    def note(message: str) -> None:
        if progress is not False:
            print(f"[plan] {message}", file=out, flush=True)

    parent_tasks = spec.trial_tasks()
    tasks_by_preset: Dict[str, List[Dict[str, Any]]] = {}
    for task in parent_tasks:
        tasks_by_preset.setdefault(task["preset"], []).append(task)

    solutions = _solve_contested(spec)
    contested = {
        preset: (solutions[preset].contested if solutions[preset] else True)
        for preset in spec.presets
    }
    if any(contested.values()):
        note(
            "solver: contested preset(s) "
            + ", ".join(p for p in spec.presets if contested[p])
            + " get double rounds"
        )

    # Per-preset progress.
    cursor = {preset: 0 for preset in spec.presets}
    stop_reason: Dict[str, Optional[str]] = {p: None for p in spec.presets}
    stop_round: Dict[str, Optional[int]] = {p: None for p in spec.presets}
    widths: Dict[str, Optional[float]] = {p: None for p in spec.presets}

    ok_by_key: Dict[str, Dict[str, Any]] = {}
    quarantined: List[Dict[str, Any]] = []
    quarantined_keys: set = set()
    supervisor_snapshots: List[Dict[str, Any]] = []
    batch_info: Optional[Dict[str, Any]] = None
    cached = ran = 0
    cancelled = False
    store = None
    store_health = None
    quantity: Optional[str] = None  # resolved after round 1
    rounds = 0

    def preset_records(preset: str) -> List[Dict[str, Any]]:
        """Accumulated ok-records of one preset, in parent task order."""
        return [
            ok_by_key[task["key"]]
            for task in tasks_by_preset[preset]
            if task["key"] in ok_by_key
        ]

    while True:
        active = [
            preset
            for preset in spec.presets
            if stop_reason[preset] is None
            and cursor[preset] < len(tasks_by_preset[preset])
        ]
        if not active:
            break
        rounds += 1
        round_tasks: List[Dict[str, Any]] = []
        for preset in active:
            if rounds == 1:
                want = spec.min_seeds
            else:
                want = spec.round_size * (2 if contested[preset] else 1)
            take = tasks_by_preset[preset][cursor[preset]:cursor[preset] + want]
            cursor[preset] += len(take)
            round_tasks.extend(take)

        sweep = run_sweep(
            _TaskSlice(spec, round_tasks),
            trial_fn,
            stream=stream,
            progress=progress,
            observer=observer,
            cancel_event=cancel_event,
        )
        for record in sweep.records:
            ok_by_key[record["key"]] = record
        for entry in sweep.quarantined:
            if entry["key"] not in quarantined_keys:
                quarantined_keys.add(entry["key"])
                quarantined.append(entry)
        supervisor_snapshots.append(sweep.supervisor.snapshot())
        cached += sweep.cached
        ran += sweep.ran
        store = sweep.store
        store_health = sweep.store_health
        if sweep.batch is not None:
            if batch_info is None:
                batch_info = {
                    "enabled": True,
                    "groups": 0,
                    "batched": 0,
                    "scalar_fallback": 0,
                    "ejections": [],
                }
            batch_info["groups"] += sweep.batch.get("groups", 0)
            batch_info["batched"] += sweep.batch.get("batched", 0)
            batch_info["scalar_fallback"] += sweep.batch.get("scalar_fallback", 0)
            batch_info["ejections"].extend(sweep.batch.get("ejections", []))
            if "underperformance" in sweep.batch:
                batch_info["underperformance"] = sweep.batch["underperformance"]
        if sweep.cancelled:
            cancelled = True
            break

        if quantity is None:
            pool: List[Dict[str, Any]] = []
            for preset in spec.presets:
                pool.extend(preset_records(preset))
            quantity = select_quantity(pool, explicit=spec.ci_quantity)
            if quantity is None:
                for preset in active:
                    stop_reason[preset] = "no-ci-quantity"
                    stop_round[preset] = rounds
                note("no numeric comparison quantity — stopping after one round")
                break
            note(f"tracking 95% CI width of {quantity!r} (target {spec.ci_width:g})")

        for preset in active:
            consumed = cursor[preset]
            width = _ci_width(preset_records(preset), quantity)
            widths[preset] = width
            if (
                consumed >= spec.min_seeds
                and width is not None
                and width <= spec.ci_width
            ):
                stop_reason[preset] = "ci-met"
                stop_round[preset] = rounds
                note(
                    f"preset {preset}: width {width:g} <= {spec.ci_width:g} "
                    f"after {consumed} seed(s) — stopping"
                )
            elif consumed >= len(tasks_by_preset[preset]):
                stop_reason[preset] = "budget-exhausted"
                stop_round[preset] = rounds
                note(
                    f"preset {preset}: seed budget exhausted at {consumed} "
                    f"(width {width if width is None else round(width, 6)})"
                )

    # ------------------------------------------------------------------
    # Consumed view: exactly the dispatched tasks, in parent task order.
    consumed_keys = set()
    for preset in spec.presets:
        for task in tasks_by_preset[preset][: cursor[preset]]:
            consumed_keys.add(task["key"])
    consumed_tasks = [t for t in parent_tasks if t["key"] in consumed_keys]
    records = [ok_by_key[t["key"]] for t in consumed_tasks if t["key"] in ok_by_key]
    seeds_view = list(spec.seeds[: max(cursor.values()) if cursor else 0])
    view = _PlannedView(spec, consumed_tasks, seeds_view)

    budget = len(parent_tasks)
    planner = {
        "adaptive": True,
        "confidence": CONFIDENCE,
        "ci_width": spec.ci_width,
        "quantity": quantity,
        "min_seeds": spec.min_seeds,
        "round_size": spec.round_size,
        "rounds": rounds,
        "decision_threshold": DECISION_THRESHOLD,
        "budget_trials": budget,
        "consumed_trials": len(consumed_tasks),
        "seeds_saved": budget - len(consumed_tasks),
        "contested": [p for p in spec.presets if contested[p]],
        "presets": {
            preset: {
                "contested": contested[preset],
                "budget": len(tasks_by_preset[preset]),
                "consumed": cursor[preset],
                "ci_width": widths[preset],
                "stopped": stop_reason[preset],
                "stop_round": stop_round[preset],
                "solver": (
                    solutions[preset].as_dict() if solutions[preset] else None
                ),
            }
            for preset in spec.presets
        },
    }

    rendered = render_campaign(
        view, records, cached=cached, ran=ran, quarantined=quarantined
    )
    planner_lines = [
        "",
        f"adaptive planner: target {CONFIDENCE:.0%} CI width {spec.ci_width:g}"
        + (f" on {quantity!r}" if quantity else ""),
        f"  consumed {len(consumed_tasks)}/{budget} trials in {rounds} "
        f"round(s) ({budget - len(consumed_tasks)} saved)",
    ]
    for preset in spec.presets:
        entry = planner["presets"][preset]
        width = entry["ci_width"]
        planner_lines.append(
            f"  preset {preset}: {entry['consumed']}/{entry['budget']} seeds, "
            f"width {width if width is None else f'{width:g}'}, "
            f"stopped: {entry['stopped'] or 'cancelled'}"
            + (" [contested]" if entry["contested"] else "")
        )
    rendered += "\n".join(planner_lines)
    if cancelled:
        rendered = (
            f"!! campaign cancelled — partial results "
            f"({len(records)}/{len(consumed_tasks)} trials)\n" + rendered
        )

    result = CampaignResult(
        spec=spec,
        total=len(consumed_tasks),
        records=records,
        cached=cached,
        ran=ran,
        quarantined=quarantined,
        rendered=rendered,
        cancelled=cancelled,
    )
    manifest = build_manifest(
        view,
        result,
        wall_seconds=time.monotonic() - started_wall,
        supervisor_snapshot=merge_snapshots(supervisor_snapshots),
        cancelled=cancelled,
        batch=batch_info,
        store_health=store_health,
        planner=planner,
    )
    if store is not None:
        result.manifest_path = write_manifest(store.directory, manifest)
    return result
