"""Attacker-side threshold learning (Section VII-B).

Before deploying TZ-Evader on a new device, the attacker must learn
``Tns_threshold``: set the threshold too low and benign coherence noise
triggers constant spurious hides; too high and the detection delay grows.
With a fully controlled twin device she measures directly; otherwise she
runs the Reporter/Comparer on the victim "for a relatively long time (e.g.
one hour)" and takes the largest difference observed, plus a safety
margin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.attacks.prober import ProbeController
from repro.attacks.threshold_model import ThresholdWindowModel
from repro.errors import AttackError


@dataclass(frozen=True)
class LearnedThreshold:
    """Outcome of a threshold-learning campaign."""

    observed_max: float
    margin: float
    study_duration: float

    @property
    def threshold(self) -> float:
        return self.observed_max * self.margin


def learn_from_model(
    model: ThresholdWindowModel,
    study_duration: float,
    rng: random.Random,
    margin: float = 1.0,
    window: float = 30.0,
) -> LearnedThreshold:
    """Long-term study via the window-max model (victim-side learning).

    The study is chopped into ``window``-second measurement windows; the
    learned value is the max over all of them.
    """
    if study_duration <= 0:
        raise AttackError("study_duration must be positive")
    windows = max(int(study_duration / window), 1)
    observed = max(
        model.sample_window_max(window, rng) for _ in range(windows)
    )
    return LearnedThreshold(observed, margin, study_duration)


def learn_from_controller(
    controller: ProbeController,
    margin: float = 1.2,
    study_duration: Optional[float] = None,
) -> LearnedThreshold:
    """Derive a threshold from a recording controller's dense samples.

    The controller must have been created with ``record_staleness=True``
    and run (benignly, i.e. with no introspection active) for a while.
    """
    if not controller.record_staleness:
        raise AttackError("controller was not recording staleness")
    if not controller.staleness_samples:
        raise AttackError("no staleness samples recorded yet")
    return LearnedThreshold(
        observed_max=controller.max_staleness,
        margin=margin,
        study_duration=study_duration if study_duration is not None else 0.0,
    )


def recommend_threshold(samples: Sequence[float], margin: float = 1.2) -> float:
    """Plain helper: max(samples) * margin."""
    if not samples:
        raise AttackError("no samples to recommend a threshold from")
    return max(samples) * margin
