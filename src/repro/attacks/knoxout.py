"""The KNOX-bypass data attack (Section VII-A, reference [26]).

Synchronous introspection traps writes to protected pages — but the page
table entries carrying the Access Permission bits are ordinary kernel
data.  A write-what-where kernel vulnerability therefore bypasses the
whole mechanism in two moves:

1. use the arbitrary-write primitive to flip the target page's PTE from
   read-only to writable (the PTE's page is *not* in the hook list);
2. write the payload into the now-writable "protected" page — no fault,
   no mediation, no alarm.

This is how the paper argues the TZ-Evader's premise (root in the rich OS
despite deployed synchronous introspection) is realistic — and why the
asynchronous layer is needed at all: the *bytes* are now wrong, and only
something that re-reads memory (SATIN) can notice.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.errors import AttackError
from repro.hw.world import World
from repro.kernel.paging import PTE_WRITABLE
from repro.secure.sync_introspection import SynchronousIntrospection


@dataclass(frozen=True)
class BypassStep:
    """One step of the bypass, for reporting/inspection."""

    description: str
    offset: int
    succeeded: bool


class WriteWhatWhereExploit:
    """An arbitrary kernel-write primitive (the [26]-style vulnerability).

    Models a kernel bug reachable from user space that writes
    attacker-controlled bytes to an attacker-controlled kernel address.
    It goes through the same protected write path as any other write —
    the point is that the addresses it targets (PTEs) are unprotected.
    """

    def __init__(self, sync: SynchronousIntrospection) -> None:
        self.sync = sync
        self.invocations = 0

    def write(self, offset: int, data: bytes) -> bool:
        self.invocations += 1
        return self.sync.protected_memory.write(offset, data, World.NORMAL)


class KnoxBypassAttack:
    """Flip the AP bits, then overwrite the protected bytes."""

    def __init__(self, sync: SynchronousIntrospection) -> None:
        if not sync.installed:
            raise AttackError("nothing to bypass: protection not installed")
        self.sync = sync
        self.exploit = WriteWhatWhereExploit(sync)
        self.steps: List[BypassStep] = []

    # ------------------------------------------------------------------
    def naive_write(self, offset: int, data: bytes) -> bool:
        """What a script kiddie does: write the protected bytes directly.

        Blocked and logged by the synchronous monitor.
        """
        ok = self.sync.write_as_attacker(offset, data)
        self.steps.append(BypassStep("direct write to protected page", offset, ok))
        return ok

    def bypass_and_write(self, offset: int, data: bytes) -> bool:
        """The real attack: PTE flip, then the payload write."""
        table = self.sync.page_table
        page = table.page_of(offset)
        pte_offset = table.pte_offset(page)
        current = table.read_pte(page, World.NORMAL)
        flipped = struct.pack("<Q", current | PTE_WRITABLE)
        # Step 1: the write-what-where hits the PTE — ordinary kernel
        # data, not in the hook list, so no mediation fires.
        step1 = self.exploit.write(pte_offset, flipped)
        self.steps.append(BypassStep("write-what-where flips PTE", pte_offset, step1))
        if not step1:
            return False
        # Step 2: the formerly protected page is now writable.
        step2 = self.sync.write_as_attacker(offset, data)
        self.steps.append(BypassStep("payload write lands", offset, step2))
        return step2

    # ------------------------------------------------------------------
    def restore_protection(self, offset: int) -> None:
        """Optionally flip the AP bit back (covering the preparation trace)."""
        table = self.sync.page_table
        page = table.page_of(offset)
        current = table.read_pte(page, World.NORMAL)
        self.exploit.write(
            table.pte_offset(page), struct.pack("<Q", current & ~PTE_WRITABLE)
        )
