"""The user-level multi-thread prober (Section III-B1, Figure 2).

A plain (CFS-scheduled) process with one thread pinned to each core; no
kernel privilege required, hence fully stealthy — but its probing accuracy
suffers whenever competing threads of equal or higher priority share a
core, so its staleness threshold must be set much higher than
KProber-II's.  The paper measured ``Tns_delay < 5.97e-3 s`` at user level
against an ``8.04e-2 s`` whole-kernel integrity check — slow, but still
fast enough to defeat whole-kernel introspection (experiment E8).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.prober import ProbeController, iter_probe_cores
from repro.config import ProberConfig
from repro.errors import AttackError
from repro.hw.platform import Machine
from repro.kernel.os import RichOS
from repro.kernel.threads import Task, pin_to
from repro.sim.batch import bind_sampler
from repro.sim.process import cpu, sleep

#: Default user-level probe interval: coarser than KProber-II's Tsleep to
#: stay inconspicuous among ordinary CFS threads.
DEFAULT_USER_INTERVAL = 1e-3

#: Default user-level staleness threshold: must absorb CFS scheduling
#: latency on a loaded core, not just buffer-visibility noise.
DEFAULT_USER_THRESHOLD = 4e-3


class UserLevelProber:
    """Unprivileged multi-thread liveness prober."""

    def __init__(
        self,
        machine: Machine,
        rich_os: RichOS,
        config: Optional[ProberConfig] = None,
        observer_cores: Optional[Sequence[int]] = None,
        target_cores: Optional[Sequence[int]] = None,
        interval: float = DEFAULT_USER_INTERVAL,
        threshold: float = DEFAULT_USER_THRESHOLD,
        oracle: Optional[ProberAccelerationOracle] = None,
        record_staleness: bool = False,
    ) -> None:
        self.machine = machine
        self.rich_os = rich_os
        self.config = config if config is not None else machine.config.prober
        self.interval = interval
        self.controller = ProbeController(
            machine,
            self.config,
            observer_cores=iter_probe_cores(machine, observer_cores),
            target_cores=iter_probe_cores(machine, target_cores),
            threshold=threshold,
            record_staleness=record_staleness,
            expected_interval=interval,
        )
        self.oracle = oracle
        self.running = False
        # Armed probe loops observe scan timing chunk by chunk.
        machine.register_interference(lambda: self.running)
        self.threads: List[Task] = []
        self.iterations = 0

    # ------------------------------------------------------------------
    def install(self) -> "UserLevelProber":
        """Start the probe process: one CFS child thread per probed core."""
        if self.running:
            raise AttackError("user-level prober is already running")
        self.running = True
        cores = sorted(
            set(self.controller.observer_cores) | set(self.controller.target_cores)
        )
        for core_index in cores:
            compares = core_index in self.controller.observer_cores
            self.threads.append(
                self.rich_os.spawn(
                    f"uprober-{core_index}",
                    self._make_body(core_index, compares),
                    affinity=pin_to(core_index),
                )
            )
        return self

    def uninstall(self) -> None:
        self.running = False

    # ------------------------------------------------------------------
    def _make_body(self, core_index: int, compares: bool):
        rng = self.machine.rng.stream(f"uprober.jitter.{core_index}")
        draw_jitter = bind_sampler(self.config.wake_jitter, rng)

        def body(task: Task) -> Generator[Any, Any, None]:
            cfg = self.config
            controller = self.controller
            while self.running:
                yield cpu(cfg.report_cost)
                controller.report(core_index)
                if compares:
                    yield cpu(cfg.compare_cost)
                    controller.compare(core_index)
                self.iterations += 1
                pause = self.interval + draw_jitter()
                if self.oracle is not None:
                    pause = self.oracle.adjust(pause)
                yield sleep(pause)

        return body
