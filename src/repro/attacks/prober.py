"""Core probing machinery: Time Reporter, Time Comparer, probe buffer.

The prober infers each core's world from *liveness*: a thread pinned to a
core keeps writing the shared counter value into a normal-memory buffer
(the **Time Reporter**); every thread also reads the other cores' latest
reports and flags any core whose report has gone stale beyond a threshold
(the **Time Comparer**).  A core held by the secure world stops reporting —
the side channel of Section III-B1.

Cross-core buffer reads occasionally see a *stale* entry because of cache
coherence traffic (the paper measured delays up to ~1.3e-3 s); the
visibility model here draws those delays from the calibrated spike mixture
in :class:`~repro.config.ProberConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import ProberConfig
from repro.errors import AttackError
from repro.hw.platform import Machine
from repro.sim.batch import bind_sampler


@dataclass(frozen=True)
class ProbeDetection:
    """One rising-edge 'core entered the secure world' report."""

    time: float
    observer_core: int
    suspect_core: int
    staleness: float


@dataclass(frozen=True)
class ProbeClear:
    """A previously suspected core reported again (secure exit observed)."""

    time: float
    observer_core: int
    suspect_core: int


class ProbeBuffer:
    """The shared time-report buffer with cross-core visibility delays.

    Each core owns one slot; a remote read may return a slightly stale
    entry according to the visibility-delay distribution.  Self-reads are
    always fresh.
    """

    _HISTORY = 6

    def __init__(self, machine: Machine, config: ProberConfig) -> None:
        self.machine = machine
        self.config = config
        self._rng = machine.rng.stream("prober.visibility")
        self._draw_delay = bind_sampler(config.cross_core_delay, self._rng)
        #: per-core list of (write_time, value), newest last.
        self._slots: Dict[int, List[Tuple[float, float]]] = {}

    def write(self, core_index: int, value: float) -> None:
        history = self._slots.setdefault(core_index, [])
        history.append((self.machine.sim.now, value))
        if len(history) > self._HISTORY:
            del history[0]

    def read(self, reader_core: int, target_core: int) -> Optional[float]:
        """Latest visible report of ``target_core`` as seen by ``reader_core``."""
        history = self._slots.get(target_core)
        if not history:
            return None
        if reader_core == target_core:
            return history[-1][1]
        visible_until = self.machine.sim.now - self._draw_delay()
        for write_time, value in reversed(history):
            if write_time <= visible_until:
                return value
        # Everything in history is too new to be visible: the oldest
        # retained entry is the best the reader can observe.
        return history[0][1]


class ProbeController:
    """Shared detection state of a multi-thread prober.

    Thread bodies call :meth:`report` and :meth:`compare`; the controller
    keeps per-suspect edge state so each secure-world entry produces one
    :class:`ProbeDetection` and one :class:`ProbeClear`.
    """

    def __init__(
        self,
        machine: Machine,
        config: Optional[ProberConfig] = None,
        observer_cores: Optional[Sequence[int]] = None,
        target_cores: Optional[Sequence[int]] = None,
        threshold: Optional[float] = None,
        record_staleness: bool = False,
        expected_interval: Optional[float] = None,
    ) -> None:
        self.machine = machine
        self.config = config if config is not None else machine.config.prober
        all_cores = [core.index for core in machine.cores]
        self.observer_cores = list(observer_cores) if observer_cores is not None else all_cores
        self.target_cores = list(target_cores) if target_cores is not None else all_cores
        if not self.observer_cores or not self.target_cores:
            raise AttackError("prober needs at least one observer and one target")
        self.threshold = threshold if threshold is not None else self.config.detect_threshold
        #: the probe loop's nominal iteration interval; the self-gate
        #: (oversleep detector) is a multiple of this.
        self.expected_interval = (
            expected_interval if expected_interval is not None else self.config.tsleep
        )
        self.buffer = ProbeBuffer(machine, self.config)
        self._last_report: Dict[int, float] = {}
        #: gap between each observer's last two reports (oversleep gauge).
        self._report_gap: Dict[int, float] = {}
        #: per-observer time before which staleness evidence is distrusted.
        self._distrust_until: Dict[int, float] = {}
        #: freshest report value any observer has seen per target.  The
        #: probe threads share their buffer in normal memory, so pooling
        #: observations is free for the attacker and avoids re-triggering
        #: on one observer's stale (visibility-delayed) view after another
        #: observer already saw the core come back.
        self._latest_seen: Dict[int, float] = {}
        self._active_suspects: set = set()
        self.detections: List[ProbeDetection] = []
        self.clears: List[ProbeClear] = []
        self._detect_listeners: List[Callable[[ProbeDetection], None]] = []
        self._clear_listeners: List[Callable[[ProbeClear], None]] = []
        # --- statistics ---------------------------------------------------
        self.record_staleness = record_staleness
        self.staleness_samples: List[float] = []
        self.max_staleness = 0.0
        self.compare_rounds = 0
        self.gated_rounds = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_detect_listener(self, listener: Callable[[ProbeDetection], None]) -> None:
        self._detect_listeners.append(listener)

    def add_clear_listener(self, listener: Callable[[ProbeClear], None]) -> None:
        self._clear_listeners.append(listener)

    # ------------------------------------------------------------------
    # Time Reporter
    # ------------------------------------------------------------------
    def report(self, core_index: int) -> None:
        """Publish the shared counter value from ``core_index``."""
        now = self.machine.counter.read_seconds()
        previous = self._last_report.get(core_index)
        gap = now - previous if previous is not None else float("inf")
        self._report_gap[core_index] = gap
        if gap > self.config.self_gate_factor * self.expected_interval:
            # Coming out of an oversleep: buffer entries of other cores may
            # lag by a worst-case coherence delay — distrust them briefly.
            self._distrust_until[core_index] = now + self.config.distrust_window
        self.buffer.write(core_index, now)
        self._last_report[core_index] = now

    # ------------------------------------------------------------------
    # Time Comparer
    # ------------------------------------------------------------------
    def compare(self, observer_core: int) -> List[ProbeDetection]:
        """Compare the observer's report against every target's.

        Returns the *new* detections from this sweep.  A sweep is
        self-gated when the observer itself overslept (its own previous
        report is old): the whole buffer is then uniformly stale and any
        difference says nothing about other cores.
        """
        now = self.machine.sim.now
        self.compare_rounds += 1
        my_time = self._last_report.get(observer_core)
        if my_time is None:
            return []
        gate = self.config.self_gate_factor * self.expected_interval
        # Self-gating: if the observer itself just overslept (long gap
        # between its last two reports) or its report is stale, the whole
        # buffer may be uniformly old — the sweep proves nothing.
        if (
            now - my_time > gate
            or self._report_gap.get(observer_core, float("inf")) > gate
            or now < self._distrust_until.get(observer_core, 0.0)
        ):
            self.gated_rounds += 1
            return []
        new_detections: List[ProbeDetection] = []
        for target in self.target_cores:
            if target == observer_core:
                continue
            their_time = self.buffer.read(observer_core, target)
            if their_time is None:
                continue
            pooled = self._latest_seen.get(target)
            if pooled is None or their_time > pooled:
                self._latest_seen[target] = their_time
            else:
                their_time = pooled
            staleness = my_time - their_time
            if self.record_staleness and target not in self._active_suspects:
                self.staleness_samples.append(staleness)
                if staleness > self.max_staleness:
                    self.max_staleness = staleness
            if staleness > self.threshold:
                if target not in self._active_suspects:
                    self._active_suspects.add(target)
                    detection = ProbeDetection(now, observer_core, target, staleness)
                    self.detections.append(detection)
                    new_detections.append(detection)
                    self.machine.metrics.counter("attack.probe_detections").inc()
                    self.machine.trace.emit(
                        now, "prober", "core suspected in secure world",
                        observer=observer_core, suspect=target,
                        staleness=staleness,
                    )
                    for listener in self._detect_listeners:
                        listener(detection)
            elif target in self._active_suspects:
                self._active_suspects.discard(target)
                clear = ProbeClear(now, observer_core, target)
                self.clears.append(clear)
                self.machine.trace.emit(
                    now, "prober", "suspected core reported again",
                    observer=observer_core, suspect=target,
                )
                for listener in self._clear_listeners:
                    listener(clear)
        return new_detections

    # ------------------------------------------------------------------
    @property
    def active_suspects(self) -> frozenset:
        return frozenset(self._active_suspects)

    def reset_staleness_stats(self) -> None:
        self.staleness_samples = []
        self.max_staleness = 0.0


def iter_probe_cores(machine: Machine, cores: Optional[Iterable[int]]) -> List[int]:
    """Normalise an optional core list to concrete indices."""
    if cores is None:
        return [core.index for core in machine.cores]
    return list(cores)
