"""DKOM module hiding: unlink without freeing.

The classic Direct Kernel Object Manipulation rootkit move: remove the
malicious module's record from the loaded-module linked list (so ``lsmod``
and naive list walks no longer show it) while the module itself — and its
slab record — stay resident.  Static hashing never sees it (the slab is
*dynamic* data, legitimately mutable), which is exactly why the paper's
introduction calls for fine-grained semantic checking on dynamic kernel
structures.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AttackError
from repro.hw.world import World
from repro.kernel.modules import LIST_END, ModuleList, ModuleRecord


class DkomModuleHider:
    """Hides (and can re-link) one loaded module via pointer surgery."""

    def __init__(self, modules: ModuleList, module_name: str) -> None:
        self.modules = modules
        self.module_name = module_name
        self._hidden_record: Optional[ModuleRecord] = None
        self._was_head = False
        self.hides = 0
        self.relinks = 0

    # ------------------------------------------------------------------
    @property
    def hidden(self) -> bool:
        return self._hidden_record is not None

    def hide(self) -> ModuleRecord:
        """Unlink the module from the list, leaving its record live."""
        if self.hidden:
            raise AttackError(f"module {self.module_name!r} is already hidden")
        prev: Optional[ModuleRecord] = None
        cursor = self.modules.read_head(World.NORMAL)
        while cursor != LIST_END:
            record = self.modules.read_record(cursor, World.NORMAL)
            if record.name == self.module_name:
                if prev is None:
                    self._was_head = True
                    self.modules._write_head(record.next_offset, World.NORMAL)
                else:
                    self._was_head = False
                    self.modules._write_record(
                        prev.slot, prev.name, record.next_offset,
                        prev.flags, World.NORMAL,
                    )
                # Crucially: the record's live flag stays set — the module
                # is still resident and running.
                self._hidden_record = record
                self.hides += 1
                return record
            prev = record
            cursor = record.next_offset
        raise AttackError(f"module {self.module_name!r} is not in the list")

    def relink(self) -> None:
        """Put the module back on the list head (e.g. before a reboot)."""
        if not self.hidden:
            raise AttackError("module is not hidden")
        record = self._hidden_record
        assert record is not None
        head = self.modules.read_head(World.NORMAL)
        self.modules._write_record(
            record.slot, record.name, head, record.flags, World.NORMAL
        )
        self.modules._write_head(record.offset, World.NORMAL)
        self._hidden_record = None
        self.relinks += 1
