"""Interrupt-storm attacker: stretching preemptible introspection rounds.

Section V-B: "the normal world interrupt signal is possible to interrupt
the execution of secure world ... To prevent the normal world from using
interrupts to interfere in the introspection process, SATIN needs to block
all interrupts during each round".

This module is the attack that motivates that sentence.  When the secure
world runs *preemptible* (OP-TEE-style routing, ``block_ns_interrupts``
off), a root-privileged attacker can flood the introspected core with
device interrupts; every delivery pauses the scan for two world switches
plus the handler, stretching the round far beyond the race bound and
giving the recovery thread the time it needs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import AttackError
from repro.hw.core import Core
from repro.hw.gic import InterruptGroup
from repro.hw.platform import Machine
from repro.sim.events import Event

#: Interrupt ID the storm rides on (a "device" interrupt the attacker
#: can trigger at will, e.g. by hammering a peripheral).
STORM_INTID = 48


class IrqStormAttacker:
    """Floods cores in the secure world with non-secure interrupts."""

    def __init__(
        self,
        machine: Machine,
        interval: float = 2e-4,
        target_cores: Optional[List[int]] = None,
    ) -> None:
        if interval <= 0:
            raise AttackError("storm interval must be positive")
        self.machine = machine
        self.interval = interval
        self.target_cores = (
            list(target_cores) if target_cores is not None
            else [c.index for c in machine.cores]
        )
        self.running = False
        self._event: Optional[Event] = None
        # A storm's interrupt pressure interacts with scans in flight.
        machine.register_interference(lambda: self.running)
        self.interrupts_fired = 0
        # An attacker-owned handler: does nothing (the damage is the
        # delivery path itself).
        machine.gic.configure(STORM_INTID, InterruptGroup.NONSECURE)
        machine.gic.register_ns_handler(STORM_INTID, self._handler)

    # ------------------------------------------------------------------
    def start(self) -> "IrqStormAttacker":
        if self.running:
            raise AttackError("storm already running")
        self.running = True
        self._schedule_next()
        return self

    def stop(self) -> None:
        self.running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        self._event = self.machine.sim.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        if not self.running:
            return
        # Aim at cores currently away in the secure world — the only
        # deliveries that matter (and the attacker can tell which those
        # are from its prober anyway).
        for index in self.target_cores:
            core: Core = self.machine.cores[index]
            if not core.available_to_normal_world:
                self.interrupts_fired += 1
                self.machine.gic.trigger(core, STORM_INTID)
        self._schedule_next()

    def _handler(self, core: Core, intid: int) -> None:
        """The rich-OS-side handler body (attacker-installed, trivial)."""
