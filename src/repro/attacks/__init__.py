"""Normal-world attack components: probers, rootkit, TZ-Evader."""

from repro.attacks.calibration import (
    LearnedThreshold,
    learn_from_controller,
    learn_from_model,
    recommend_threshold,
)
from repro.attacks.dkom import DkomModuleHider
from repro.attacks.evader import EvaderState, TZEvader
from repro.attacks.irq_storm import STORM_INTID, IrqStormAttacker
from repro.attacks.knoxout import KnoxBypassAttack, WriteWhatWhereExploit
from repro.attacks.kprober1 import EVIL_IRQ_HANDLER, KProberI, kprober1_threshold
from repro.attacks.predictor import PredictiveEvader
from repro.attacks.kprober2 import KProberII
from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.prober import (
    ProbeBuffer,
    ProbeClear,
    ProbeController,
    ProbeDetection,
)
from repro.attacks.rootkit import (
    EVIL_SYSCALL_HANDLER,
    AttackTrace,
    PersistentRootkit,
)
from repro.attacks.threshold_model import ThresholdStats, ThresholdWindowModel
from repro.attacks.user_prober import (
    DEFAULT_USER_INTERVAL,
    DEFAULT_USER_THRESHOLD,
    UserLevelProber,
)

__all__ = [
    "AttackTrace",
    "DEFAULT_USER_INTERVAL",
    "DEFAULT_USER_THRESHOLD",
    "EVIL_IRQ_HANDLER",
    "EVIL_SYSCALL_HANDLER",
    "DkomModuleHider",
    "EvaderState",
    "IrqStormAttacker",
    "KnoxBypassAttack",
    "KProberI",
    "KProberII",
    "LearnedThreshold",
    "PersistentRootkit",
    "ProbeBuffer",
    "ProbeClear",
    "ProbeController",
    "ProbeDetection",
    "PredictiveEvader",
    "ProberAccelerationOracle",
    "STORM_INTID",
    "TZEvader",
    "ThresholdStats",
    "ThresholdWindowModel",
    "UserLevelProber",
    "WriteWhatWhereExploit",
    "kprober1_threshold",
    "learn_from_controller",
    "learn_from_model",
    "recommend_threshold",
]
