"""Harness-side simulation accelerator for probe loops.

A prober iterating every ``Tsleep = 2e-4 s`` over hundreds of simulated
seconds generates tens of millions of events, almost all of them in periods
where nothing observable happens.  The oracle lets a probe loop sleep
straight through those quiet gaps: it peeks at the *simulator's* ground
truth (the armed secure-timer fire times) and keeps the loop dense only in
a guard window around secure-world activity.

This is a computational optimisation, **not** attacker knowledge: skipped
iterations would all have produced "every core alive, nothing stale"
sweeps.  The comparer's self-gating (it discards the sweep after noticing
its own oversleep) makes the post-skip behaviour identical to the dense
one.  Tests in ``tests/attacks/test_oracle.py`` verify dense and
accelerated runs produce the same detections.
"""

from __future__ import annotations

from repro.hw.platform import Machine


class ProberAccelerationOracle:
    """Suggests safe long sleeps for probe loops during quiet periods."""

    def __init__(
        self,
        machine: Machine,
        guard_before: float = 0.02,
        guard_after: float = 0.05,
        min_skip_factor: float = 8.0,
    ) -> None:
        self.machine = machine
        #: wake the loop this long before the next secure-timer firing.
        self.guard_before = guard_before
        #: stay dense this long after the last secure-world exit (covers
        #: the clear/re-attack handshake).
        self.guard_after = guard_after
        #: only skip when the gap is at least this many default sleeps.
        self.min_skip_factor = min_skip_factor
        self.skips = 0
        self.skipped_time = 0.0
        self._last_secure_exit = float("-inf")
        for core in machine.cores:
            core.on_exit_secure.append(self._note_exit)

    def _note_exit(self, _core) -> None:
        self._last_secure_exit = self.machine.sim.now

    def adjust(self, default_sleep: float) -> float:
        """The sleep a probe loop should take right now."""
        now = self.machine.sim.now
        if self.machine.secure_world_active():
            return default_sleep
        if now - self._last_secure_exit < self.guard_after:
            return default_sleep
        next_fire = self.machine.next_secure_timer_fire()
        if next_fire is None:
            return default_sleep
        wake_target = next_fire - self.guard_before
        gap = wake_target - now
        if gap > default_sleep * self.min_skip_factor:
            self.skips += 1
            self.skipped_time += gap - default_sleep
            return gap
        return default_sleep
