"""KProber-I: the timer-interrupt-hijack prober (Section III-C1).

The attacker locates the IRQ entry of the AArch64 exception vector table
through ``VBAR_EL1`` and redirects it to injected code, so the Time
Reporter and Time Comparer execute inside *every* timer interrupt — a
probing frequency of at least ``HZ`` on any non-idle core, independent of
scheduler load.

Two consequences the paper highlights, both modelled here:

* because of ``CONFIG_NO_HZ_IDLE``, an idle core takes no ticks, so
  KProber-I keeps a user-level spinner thread on each probed core;
* the vector-table patch is 8 bytes of *kernel static memory* — an extra
  attack trace introspection can find, which is why a KProber-I-based
  evader must clean twice as many bytes as a KProber-II-based one.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from repro.attacks.prober import ProbeController, iter_probe_cores
from repro.config import ProberConfig
from repro.errors import AttackError
from repro.hw.core import Core
from repro.hw.platform import Machine
from repro.hw.world import World
from repro.kernel.os import RichOS
from repro.kernel.threads import Task, pin_to
from repro.kernel.vectors import IRQ_VECTOR_INDEX
from repro.sim.process import cpu

#: Synthetic address of KProber-I's injected handler code.
EVIL_IRQ_HANDLER = 0xFFFF_0000_0BAD_1000


def kprober1_threshold(hz: int, margin: float = 2.5) -> float:
    """Staleness threshold for tick-granularity probing.

    Reports land once per tick, staggered across cores, so benign
    staleness reaches ~2/HZ; the default margin puts the threshold safely
    above that.
    """
    return margin / hz


class KProberI:
    """Timer-interrupt-handler prober."""

    def __init__(
        self,
        machine: Machine,
        rich_os: RichOS,
        config: Optional[ProberConfig] = None,
        observer_cores: Optional[Sequence[int]] = None,
        target_cores: Optional[Sequence[int]] = None,
        threshold: Optional[float] = None,
        record_staleness: bool = False,
        keep_cores_busy: bool = True,
    ) -> None:
        self.machine = machine
        self.rich_os = rich_os
        self.config = config if config is not None else machine.config.prober
        hz = machine.config.kernel.hz
        self.controller = ProbeController(
            machine,
            self.config,
            observer_cores=iter_probe_cores(machine, observer_cores),
            target_cores=iter_probe_cores(machine, target_cores),
            threshold=threshold if threshold is not None else kprober1_threshold(hz),
            record_staleness=record_staleness,
            expected_interval=1.0 / hz,
        )
        self.keep_cores_busy = keep_cores_busy
        self.installed = False
        # Armed probe hooks observe scan timing chunk by chunk.
        machine.register_interference(lambda: self.installed)
        self._stop_spinners = False
        self.spinners: List[Task] = []
        self._uninstall_hook: Optional[Callable[[], None]] = None
        self.hook_invocations = 0

    # ------------------------------------------------------------------
    def install(self) -> "KProberI":
        """Patch the IRQ vector and start the spinner threads."""
        if self.installed:
            raise AttackError("KProber-I is already installed")
        vectors = self.rich_os.vector_table
        # The attack trace: redirect the IRQ exception vector (8 bytes of
        # kernel static memory, written with normal-world privilege).
        vectors.write_entry(IRQ_VECTOR_INDEX, EVIL_IRQ_HANDLER, World.NORMAL)
        self._uninstall_hook = self.rich_os.ticks.add_tick_hook(self._on_tick)
        if self.keep_cores_busy:
            probe_cores = sorted(
                set(self.controller.observer_cores)
                | set(self.controller.target_cores)
            )
            for core_index in probe_cores:
                self.spinners.append(
                    self.rich_os.spawn(
                        f"kprober1-spin-{core_index}",
                        self._spinner_body,
                        affinity=pin_to(core_index),
                    )
                )
        self.installed = True
        return self

    def uninstall(self) -> None:
        """Remove the hook and restore the vector entry (cover tracks)."""
        if not self.installed:
            return
        if self._uninstall_hook is not None:
            self._uninstall_hook()
            self._uninstall_hook = None
        self._stop_spinners = True
        vectors = self.rich_os.vector_table
        vectors.write_entry(
            IRQ_VECTOR_INDEX,
            vectors.original_entry(IRQ_VECTOR_INDEX),
            World.NORMAL,
        )
        self.installed = False

    # ------------------------------------------------------------------
    @property
    def trace_offset(self) -> int:
        """Image-relative offset of the vector-table attack trace."""
        return self.rich_os.vector_table.entry_offset(IRQ_VECTOR_INDEX)

    # ------------------------------------------------------------------
    def _on_tick(self, core: Core) -> float:
        """Reporter + comparer injected into the tick handler."""
        self.hook_invocations += 1
        cost = 0.0
        index = core.index
        if index in self.controller.target_cores or index in self.controller.observer_cores:
            self.controller.report(index)
            cost += self.config.report_cost
        if index in self.controller.observer_cores:
            self.controller.compare(index)
            cost += self.config.compare_cost
        return cost

    def _spinner_body(self, task: Task) -> Generator[Any, Any, None]:
        """CPU hog keeping its core out of NO_HZ idle."""
        while not self._stop_spinners:
            yield cpu(5e-4)
