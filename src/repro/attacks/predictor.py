"""Schedule-predicting evader (the attack SATIN's randomization kills).

Against an introspection mechanism with a *fixed* period, an attacker does
not need to win the reaction race at all: after observing a few wake-ups it
predicts the next one and hides *ahead of time*, re-planting once the scan
passes — the classic evasion the paper cites as defeating naive periodic
checking, and the reason SATIN adds the random wake-up deviation.

:class:`PredictiveEvader` extends :class:`~repro.attacks.evader.TZEvader`
with an interval estimator: when the observed inter-round intervals are
stable (relative jitter below ``stability_margin``), it schedules a
proactive hide shortly before the predicted next round and an automatic
re-attack after it.  Against SATIN's randomized schedule the estimator
never stabilises and the evader degrades to the reactive race it loses.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.attacks.evader import EvaderState, TZEvader
from repro.attacks.prober import ProbeController, ProbeDetection
from repro.attacks.rootkit import PersistentRootkit
from repro.hw.platform import Machine
from repro.kernel.os import RichOS
from repro.kernel.threads import Task
from repro.sim.process import cpu


class PredictiveEvader(TZEvader):
    """TZ-Evader plus a fixed-period schedule predictor."""

    def __init__(
        self,
        machine: Machine,
        rich_os: RichOS,
        rootkit: PersistentRootkit,
        controller: ProbeController,
        min_observations: int = 3,
        stability_margin: float = 0.10,
        hide_lead: float = 2.5e-2,
        reattack_lag: float = 2.0e-1,
        reattack_delay: float = 2e-4,
    ) -> None:
        super().__init__(machine, rich_os, rootkit, controller,
                         reattack_delay=reattack_delay)
        self.min_observations = min_observations
        self.stability_margin = stability_margin
        #: hide this long before the predicted wake-up.
        self.hide_lead = hide_lead
        #: re-plant this long after the predicted wake-up (scan must be over).
        self.reattack_lag = reattack_lag
        self._round_times: List[float] = []
        self._proactive_armed = False
        self.proactive_hides = 0
        self.predictions_made = 0

    # ------------------------------------------------------------------
    def _on_detect(self, detection: ProbeDetection) -> None:
        self._record_round(detection.time)
        super()._on_detect(detection)
        self._maybe_arm_prediction()

    def _record_round(self, time: float) -> None:
        # One record per introspection round: collapse detections that are
        # closer than the shortest plausible round spacing.
        if self._round_times and time - self._round_times[-1] < 0.25:
            return
        self._round_times.append(time)

    # ------------------------------------------------------------------
    def predicted_period(self) -> float:
        """Current interval estimate; 0.0 when the schedule looks random."""
        if len(self._round_times) < self.min_observations + 1:
            return 0.0
        intervals = [
            b - a for a, b in zip(self._round_times, self._round_times[1:])
        ]
        recent = intervals[-self.min_observations:]
        mean = sum(recent) / len(recent)
        if mean <= 0:
            return 0.0
        spread = max(recent) - min(recent)
        if spread > self.stability_margin * mean:
            return 0.0
        return mean

    def _maybe_arm_prediction(self) -> None:
        if self._proactive_armed:
            return
        period = self.predicted_period()
        if period <= 0:
            return
        next_round = self._round_times[-1] + period
        hide_at = next_round - self.hide_lead
        now = self.machine.sim.now
        if hide_at <= now:
            return
        self._proactive_armed = True
        self.predictions_made += 1
        self.machine.sim.schedule_at(hide_at, self._proactive_hide, next_round)

    # ------------------------------------------------------------------
    def _proactive_hide(self, predicted_round: float) -> None:
        self._proactive_armed = False
        if self.state is not EvaderState.ATTACKING:
            # Already hiding/hidden (a reactive hide beat us to it).
            self._maybe_arm_prediction()
            return
        self.state = EvaderState.HIDING
        self.hide_attempts += 1
        self.proactive_hides += 1
        self._hide_started_at = self.machine.sim.now
        from repro.attacks.evader import RECOVERY_PRIORITY

        self.rich_os.spawn_realtime(
            f"evader-proactive-{self.proactive_hides}",
            self._proactive_recovery_body(predicted_round),
            priority=RECOVERY_PRIORITY,
        )
        self.machine.trace.emit(
            self.machine.sim.now, "evader", "proactive hide",
            predicted_round=predicted_round,
        )

    def _proactive_recovery_body(self, predicted_round: float):
        def body(task: Task) -> Generator[Any, Any, None]:
            core = self.machine.cores[task.core_index]
            yield cpu(self.rootkit.recovery_time(core))
            self.rootkit.apply_hide()
            self.hides_completed += 1
            if self._hide_started_at is not None:
                self.hide_latencies.append(
                    self.machine.sim.now - self._hide_started_at
                )
                self._hide_started_at = None
            if self.state is EvaderState.HIDING:
                self.state = EvaderState.HIDDEN
            # Stay hidden through the predicted round, then re-plant.
            resume_at = predicted_round + self.reattack_lag
            lag = max(resume_at - self.machine.sim.now, self.reattack_delay)
            yield cpu(self.reattack_delay)
            remaining = lag - self.reattack_delay
            if remaining > 0:
                # Idle wait (not CPU): the evader lies low.
                from repro.sim.process import sleep

                yield sleep(remaining)
            if self.state is EvaderState.HIDDEN and not self._suspects:
                self.rootkit.apply_reattack()
                self.reattacks += 1
                self.state = EvaderState.ATTACKING
                self._maybe_arm_prediction()

        return body
