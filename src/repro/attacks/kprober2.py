"""KProber-II: the SCHED_FIFO kernel-level prober (Section III-C2).

After obtaining root, the attacker schedules its Time Reporter / Time
Comparer threads with ``SCHED_FIFO`` at
``sched_get_priority_max(SCHED_FIFO)``: they preempt every CFS thread and
any lower-priority RT thread the instant they wake, so each probe iteration
runs within microseconds of its timer expiry regardless of system load.
One thread is pinned to every probed core; the loop sleeps
``Tsleep = 2e-4 s`` between iterations (Section IV-A1).

Unlike KProber-I, this option modifies *no* kernel static memory — there is
no preparation trace for introspection to find.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.attacks.oracle import ProberAccelerationOracle
from repro.attacks.prober import ProbeController, iter_probe_cores
from repro.config import ProberConfig
from repro.errors import AttackError
from repro.hw.platform import Machine
from repro.kernel.os import RichOS
from repro.kernel.threads import FIFO_PRIORITY_MAX, Task, pin_to
from repro.sim.batch import bind_sampler
from repro.sim.process import cpu, sleep


class KProberII:
    """Real-time-scheduler-based prober."""

    def __init__(
        self,
        machine: Machine,
        rich_os: RichOS,
        config: Optional[ProberConfig] = None,
        observer_cores: Optional[Sequence[int]] = None,
        target_cores: Optional[Sequence[int]] = None,
        threshold: Optional[float] = None,
        oracle: Optional[ProberAccelerationOracle] = None,
        priority: int = FIFO_PRIORITY_MAX,
        record_staleness: bool = False,
    ) -> None:
        self.machine = machine
        self.rich_os = rich_os
        self.config = config if config is not None else machine.config.prober
        self.controller = ProbeController(
            machine,
            self.config,
            observer_cores=iter_probe_cores(machine, observer_cores),
            target_cores=iter_probe_cores(machine, target_cores),
            threshold=threshold,
            record_staleness=record_staleness,
        )
        self.oracle = oracle
        self.priority = priority
        self.running = False
        # Armed probe threads observe scan timing chunk by chunk.
        machine.register_interference(lambda: self.running)
        self.threads: List[Task] = []
        self.iterations = 0

    # ------------------------------------------------------------------
    def install(self) -> "KProberII":
        """Spawn one pinned FIFO thread per probed core."""
        if self.running:
            raise AttackError("KProber-II is already installed")
        self.running = True
        cores = sorted(
            set(self.controller.observer_cores) | set(self.controller.target_cores)
        )
        for core_index in cores:
            compares = core_index in self.controller.observer_cores
            self.threads.append(
                self.rich_os.spawn_realtime(
                    f"kprober2-{core_index}",
                    self._make_body(core_index, compares),
                    priority=self.priority,
                    affinity=pin_to(core_index),
                )
            )
        return self

    def uninstall(self) -> None:
        """Signal all threads to exit at their next iteration."""
        self.running = False

    # ------------------------------------------------------------------
    def _make_body(self, core_index: int, compares: bool):
        rng = self.machine.rng.stream(f"kprober2.jitter.{core_index}")
        draw_jitter = bind_sampler(self.config.wake_jitter, rng)

        def body(task: Task) -> Generator[Any, Any, None]:
            cfg = self.config
            controller = self.controller
            # The scheduler only reads a CpuRequest, so the two fixed-cost
            # requests can be allocated once per thread, not per iteration.
            report_req = cpu(cfg.report_cost)
            compare_req = cpu(cfg.compare_cost)
            tsleep = cfg.tsleep
            while self.running:
                yield report_req
                controller.report(core_index)
                if compares:
                    yield compare_req
                    controller.compare(core_index)
                self.iterations += 1
                interval = tsleep + draw_jitter()
                if self.oracle is not None:
                    interval = self.oracle.adjust(interval)
                yield sleep(interval)

        return body
