"""Statistical model of the measured probing threshold (Table II / Fig. 4).

The paper measures, per probing period, "the largest difference calculated
by the Time Comparer" over that period — an extreme-value statistic of the
per-observation probing noise.  Rare cross-core coherence stalls give the
noise a polynomially decaying right tail, so the window maximum grows with
the probing period like ``(r * T)^(1/alpha)``; fitting the ratio between
the paper's 8 s and 300 s averages gives ``alpha ≈ 3.9``, and the absolute
level fixes ``xm`` and the effective independent-draw rate ``r`` (see
``ProberConfig.threshold_tail`` / ``effective_reads_per_second``).

Sampling the maximum of ``n = r*T`` draws directly through the quantile
function (``F^-1(u^(1/n))``) replaces millions of simulated buffer reads
per window with one draw — the order-statistics fast path promised in
DESIGN.md.  The dense simulation cross-checks it at short windows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import ProberConfig
from repro.errors import AttackError
from repro.sim.distributions import BoundedPareto, Distribution, inverse_cdf


@dataclass(frozen=True)
class ThresholdStats:
    """avg/max/min of the window-max threshold over measurement rounds."""

    period: float
    average: float
    maximum: float
    minimum: float
    samples: tuple

    @classmethod
    def from_samples(cls, period: float, samples: Sequence[float]) -> "ThresholdStats":
        if not samples:
            raise AttackError("no threshold samples")
        return cls(
            period=period,
            average=sum(samples) / len(samples),
            maximum=max(samples),
            minimum=min(samples),
            samples=tuple(samples),
        )


class ThresholdWindowModel:
    """Samples the per-window maximum probing threshold."""

    def __init__(
        self,
        config: Optional[ProberConfig] = None,
        single_core: bool = False,
    ) -> None:
        self.config = config if config is not None else ProberConfig()
        self.single_core = single_core

    # ------------------------------------------------------------------
    def _scale(self) -> float:
        return self.config.single_core_factor if self.single_core else 1.0

    def draws_in(self, period: float) -> int:
        """Effective independent extreme-value draws in a window."""
        return max(int(period * self.config.effective_reads_per_second), 1)

    def sample_window_max(self, period: float, rng: random.Random) -> float:
        """One 'probing threshold' measurement for a window of ``period``."""
        n = self.draws_in(period)
        u = rng.random() ** (1.0 / n)
        tail = self.config.threshold_tail
        if isinstance(tail, BoundedPareto):
            value = tail.inv_cdf(u)
        else:
            value = inverse_cdf(tail, u)
        return value * self._scale()

    def measure(
        self, period: float, rounds: int, rng: random.Random
    ) -> ThresholdStats:
        """Repeat the paper's measurement: ``rounds`` windows of ``period``."""
        samples = [self.sample_window_max(period, rng) for _ in range(rounds)]
        return ThresholdStats.from_samples(period, samples)

    # ------------------------------------------------------------------
    def per_read_distribution(self) -> Distribution:
        """The underlying per-observation tail (for validation tests)."""
        return self.config.threshold_tail
