"""TZ-Evader: the complete evasion attack (Section III-C).

State machine driven by prober events:

* **ATTACKING** — evil bytes planted, key-logger live.  On a probe
  detection ("some core entered the secure world"), transition to
* **HIDING** — a high-priority recovery thread is restoring the traces;
  it takes ``Tns_recover`` per 8-byte trace.  When it finishes,
* **HIDDEN** — the kernel looks benign.  When the prober observes the
  suspected core reporting again (secure world left), re-plant the traces
  after a short beat and return to ATTACKING.

Whether the evasion *works* against a given introspection mechanism is
exactly the Figure-3 race: the recovery must complete before the scanner
reads the trace bytes.  The experiments measure both sides from ground
truth (the rootkit's byte timeline vs. the checker's scan results).
"""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional

from repro.attacks.prober import ProbeClear, ProbeController, ProbeDetection
from repro.attacks.rootkit import PersistentRootkit
from repro.errors import AttackError
from repro.hw.platform import Machine
from repro.kernel.os import RichOS
from repro.kernel.threads import Task
from repro.sim.process import cpu

#: Priority of the recovery thread: just below the prober's, so probing
#: never stalls behind a recovery.
RECOVERY_PRIORITY = 98


class EvaderState(enum.Enum):
    IDLE = "idle"
    ATTACKING = "attacking"
    HIDING = "hiding"
    HIDDEN = "hidden"


class TZEvader:
    """Prober-triggered hide/re-attack controller."""

    def __init__(
        self,
        machine: Machine,
        rich_os: RichOS,
        rootkit: PersistentRootkit,
        controller: ProbeController,
        reattack_delay: float = 2e-4,
    ) -> None:
        self.machine = machine
        self.rich_os = rich_os
        self.rootkit = rootkit
        self.controller = controller
        self.reattack_delay = reattack_delay
        self.state = EvaderState.IDLE
        controller.add_detect_listener(self._on_detect)
        controller.add_clear_listener(self._on_clear)
        # An evader exists to race scans: its recovery writes land mid-scan
        # by design, so scans must keep per-chunk events while one is built.
        machine.register_interference(lambda: True)
        self._suspects: set = set()
        # --- statistics ---------------------------------------------------
        self.hide_attempts = 0
        self.hides_completed = 0
        self.reattacks = 0
        self.detections_seen = 0
        self.hide_latencies: List[float] = []
        self._hide_started_at: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "TZEvader":
        """Plant the rootkit and begin reacting to probe events."""
        if self.state is not EvaderState.IDLE:
            raise AttackError("TZ-Evader already started")
        if not self.rootkit.installed:
            self.rootkit.install()
        self.state = EvaderState.ATTACKING
        return self

    def stop(self) -> None:
        """Stop reacting (the rootkit stays in its current byte state)."""
        self.state = EvaderState.IDLE

    # ------------------------------------------------------------------
    # Prober event handlers
    # ------------------------------------------------------------------
    def _on_detect(self, detection: ProbeDetection) -> None:
        self.detections_seen += 1
        self.machine.metrics.counter("attack.detections_seen").inc()
        self._suspects.add(detection.suspect_core)
        if self.state is not EvaderState.ATTACKING:
            return
        self.state = EvaderState.HIDING
        self.hide_attempts += 1
        self.machine.metrics.counter("attack.hide_attempts").inc()
        self._hide_started_at = self.machine.sim.now
        self.rich_os.spawn_realtime(
            f"evader-recover-{self.hide_attempts}",
            self._recovery_body,
            priority=RECOVERY_PRIORITY,
        )
        self.machine.trace.emit(
            self.machine.sim.now, "evader", "recovery started",
            suspect=detection.suspect_core,
        )

    def _on_clear(self, clear: ProbeClear) -> None:
        self._suspects.discard(clear.suspect_core)
        if self._suspects:
            return
        if self.state is EvaderState.HIDDEN:
            self._schedule_reattack()

    # ------------------------------------------------------------------
    def _recovery_body(self, task: Task) -> Generator[Any, Any, None]:
        core = self.machine.cores[task.core_index]
        yield cpu(self.rootkit.recovery_time(core))
        self.rootkit.apply_hide()
        self.hides_completed += 1
        self.machine.metrics.counter("attack.hides_completed").inc()
        if self._hide_started_at is not None:
            latency = self.machine.sim.now - self._hide_started_at
            self.hide_latencies.append(latency)
            self.machine.metrics.histogram("attack.hide_latency_seconds").observe(latency)
            self._hide_started_at = None
        if self.state is EvaderState.HIDING:
            self.state = EvaderState.HIDDEN
            if not self._suspects:
                # The introspection already ended before we finished hiding.
                self._schedule_reattack()

    def _schedule_reattack(self) -> None:
        self.rich_os.spawn_realtime(
            f"evader-reattack-{self.reattacks + 1}",
            self._reattack_body,
            priority=RECOVERY_PRIORITY,
        )

    def _reattack_body(self, task: Task) -> Generator[Any, Any, None]:
        yield cpu(self.reattack_delay)
        if self.state is EvaderState.HIDDEN and not self._suspects:
            self.rootkit.apply_reattack()
            self.reattacks += 1
            self.machine.metrics.counter("attack.reattacks").inc()
            self.state = EvaderState.ATTACKING

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        return {
            "state": self.state.value,
            "detections_seen": self.detections_seen,
            "hide_attempts": self.hide_attempts,
            "hides_completed": self.hides_completed,
            "reattacks": self.reattacks,
            "captures": self.rootkit.captures,
        }
