"""The persistent kernel rootkit (Section IV-A2).

The sample attack hijacks the ``GETTID`` system call by overwriting its
8-byte entry in the system call table — kernel static ("text") data that
TrustZone introspection hashes.  The rootkit is an APT: it wants to stay
resident as long as possible (e.g. a key-logger collecting input), so it
only *hides* (restores the original bytes) when its prober says an
introspection is running, and re-installs afterwards.

Restoring one 8-byte trace is not a single store: the attacker must locate
the trace, fix page permissions, write, and clean derived state — the
paper measured ``Tns_recover`` ≈ 5–6 ms per 8-byte trace.  That cost is
charged to whichever core executes the recovery.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import AttackError
from repro.hw.core import Core
from repro.hw.platform import Machine
from repro.hw.world import World
from repro.kernel.os import RichOS
from repro.kernel.syscalls import NR_GETTID
from repro.kernel.threads import Task

#: Synthetic address of the malicious syscall handler.
EVIL_SYSCALL_HANDLER = 0xFFFF_0000_0BAD_0000


@dataclass
class AttackTrace:
    """One contiguous piece of attack evidence in kernel static memory."""

    name: str
    offset: int
    evil_bytes: bytes
    original_bytes: bytes

    @property
    def length(self) -> int:
        return len(self.evil_bytes)


@dataclass(frozen=True)
class StateTransition:
    """Timeline entry: the rootkit's bytes changed at ``time``."""

    time: float
    active: bool


class PersistentRootkit:
    """GETTID-hijacking APT rootkit with timed hide/restore."""

    def __init__(
        self,
        machine: Machine,
        rich_os: RichOS,
        syscall_nr: int = NR_GETTID,
        evil_handler: int = EVIL_SYSCALL_HANDLER,
        extra_traces: Optional[List[Tuple[str, int, bytes]]] = None,
    ) -> None:
        self.machine = machine
        self.rich_os = rich_os
        self.syscall_nr = syscall_nr
        self.evil_handler = evil_handler
        table = rich_os.syscall_table
        entry_offset = table.entry_offset(syscall_nr)
        original = rich_os.image.read(entry_offset, 8, World.NORMAL)
        self.traces: List[AttackTrace] = [
            AttackTrace(
                name=f"syscall-{syscall_nr}-hijack",
                offset=entry_offset,
                evil_bytes=struct.pack("<Q", evil_handler),
                original_bytes=original,
            )
        ]
        for name, offset, evil in extra_traces or []:
            existing = rich_os.image.read(offset, len(evil), World.NORMAL)
            self.traces.append(
                AttackTrace(name=name, offset=offset,
                            evil_bytes=evil, original_bytes=existing)
            )
        self.active = False
        self.installed = False
        # While installed, hide()/replant() may rewrite kernel bytes at any
        # simulated instant, so scans must not fuse their chunk events.
        machine.register_interference(lambda: self.installed)
        self.timeline: List[StateTransition] = []
        self.captures = 0
        self.hide_count = 0
        self.reattack_count = 0
        rich_os.register_syscall_interceptor(evil_handler, self._capture)

    # ------------------------------------------------------------------
    # Byte-level actions (instantaneous writes; timing is charged by the
    # task driving them — see TZEvader)
    # ------------------------------------------------------------------
    def install(self) -> "PersistentRootkit":
        """Plant every attack trace (requires root in the rich OS)."""
        if self.installed:
            raise AttackError("rootkit is already installed")
        self.installed = True
        self._write_evil()
        return self

    def apply_hide(self) -> None:
        """Restore the original bytes (completes a recovery)."""
        if not self.active:
            return
        image = self.rich_os.image
        for trace in self.traces:
            image.write(trace.offset, trace.original_bytes, World.NORMAL)
        self.active = False
        self.hide_count += 1
        self.timeline.append(StateTransition(self.machine.sim.now, False))
        self.machine.metrics.counter("attack.traces_hidden").inc()
        self.machine.trace.emit(self.machine.sim.now, "rootkit", "traces hidden")

    def apply_reattack(self) -> None:
        """Re-plant the traces after the coast clears."""
        if not self.installed or self.active:
            return
        self._write_evil()
        self.reattack_count += 1
        self.machine.metrics.counter("attack.traces_replanted").inc()
        self.machine.trace.emit(self.machine.sim.now, "rootkit", "traces re-planted")

    def _write_evil(self) -> None:
        image = self.rich_os.image
        for trace in self.traces:
            image.write(trace.offset, trace.evil_bytes, World.NORMAL)
        self.active = True
        self.timeline.append(StateTransition(self.machine.sim.now, True))

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def trace_bytes(self) -> int:
        """Total bytes the evader must clean (M in the race model)."""
        return sum(trace.length for trace in self.traces)

    def recovery_time(self, core: Core) -> float:
        """Sampled time to restore every trace from ``core``."""
        total = 0.0
        for trace in self.traces:
            units = -(-trace.length // 8)  # ceil(length / 8)
            for _ in range(units):
                total += core.perf.recover_trace_8b()
        return total

    # ------------------------------------------------------------------
    # Ground truth for experiments
    # ------------------------------------------------------------------
    def active_at(self, time: float) -> bool:
        """Were the evil bytes present at simulated ``time``?"""
        state = False
        for transition in self.timeline:
            if transition.time > time:
                break
            state = transition.active
        return state

    def exposed_during(self, start: float, end: float) -> bool:
        """Were the evil bytes present at any instant of [start, end]?"""
        state = False
        for transition in self.timeline:
            if transition.time <= start:
                state = transition.active
                continue
            if state:
                return True  # active when entering (or within) the window
            if transition.time > end:
                return False
            state = transition.active
            if state:
                return True
        return state

    def _capture(self, task: Task, nr: int) -> None:
        """The malicious handler's observable effect (key-logging)."""
        self.captures += 1

    @property
    def trace_offsets(self) -> List[int]:
        return [trace.offset for trace in self.traces]
