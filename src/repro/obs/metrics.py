"""Metrics registry: counters, gauges, log-bucket histograms, timers.

The registry is the numeric half of the telemetry subsystem (the trace
recorder is the narrative half).  Components — the simulator event loop,
the EL3 monitor's world-switch path, SATIN's introspection rounds, the
attack state machines, the campaign supervisor — all emit into one
:class:`MetricsRegistry` and never format or aggregate anything
themselves.

Design rules, chosen so campaign shards aggregate exactly:

* **Fixed buckets.**  Every histogram shares one global log-scale bucket
  table (:data:`BUCKET_BOUNDS`), so two snapshots merge bucket-by-bucket
  with integer addition — no re-binning, no approximation.
* **Deterministic snapshots.**  ``snapshot()`` emits plain sorted dicts of
  JSON-safe scalars.  A trial that records only simulated-time quantities
  produces the same snapshot on every run, which is what lets a
  ``--jobs 4`` campaign manifest match the ``--jobs 0`` one byte for byte.
* **Order-fixed merging.**  :func:`merge_snapshots` folds snapshots in the
  order given; campaign code always passes task order, never completion
  order, so float sums accumulate identically regardless of parallelism.

A process-local registry stack (:func:`use_registry`) lets harnesses
scope a registry around a trial: ``Machine`` adopts the active registry
when one is installed, so experiment internals need no plumbing changes.
"""

from __future__ import annotations

import bisect
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import ObservabilityError

#: Histogram bucket layout: ``BUCKETS_PER_DECADE`` log-spaced buckets per
#: decade spanning [1e-9, 1e4) — nanoseconds to hours when observing
#: seconds, and still sane for byte counts or event totals.
BUCKETS_PER_DECADE = 4
_MIN_EXP = -9
_MAX_EXP = 4

#: Upper bound of bucket ``i``; values above the last bound overflow.
BUCKET_BOUNDS: List[float] = [
    10.0 ** (_MIN_EXP + i / BUCKETS_PER_DECADE)
    for i in range((_MAX_EXP - _MIN_EXP) * BUCKETS_PER_DECADE + 1)
]

#: Bucket index for values <= the smallest bound (incl. zero/negative).
UNDERFLOW = 0
#: Bucket index for values above the largest bound.
OVERFLOW = len(BUCKET_BOUNDS)


def bucket_index(value: float) -> int:
    """The fixed bucket a value falls into (monotone in ``value``)."""
    return bisect.bisect_left(BUCKET_BOUNDS, value)


def bucket_bound(index: int) -> Optional[float]:
    """Upper bound of bucket ``index`` (None for the overflow bucket)."""
    if 0 <= index < len(BUCKET_BOUNDS):
        return BUCKET_BOUNDS[index]
    return None


class Counter:
    """Monotonically increasing count (events, rounds, errors)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Point-in-time level plus its high-water mark."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram:
    """Distribution sketch over the shared log-scale bucket table."""

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Timer:
    """Context manager that observes elapsed time into a histogram.

    The clock is injectable: profiling uses ``time.perf_counter`` (the
    default), while simulated-duration measurements pass a lambda over
    ``sim.now`` so the observation stays deterministic.
    """

    __slots__ = ("histogram", "clock", "_started")

    def __init__(self, histogram: Histogram, clock: Callable[[], float]) -> None:
        self.histogram = histogram
        self.clock = clock
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = self.clock()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.histogram.observe(self.clock() - self._started)


class MetricsRegistry:
    """Named metric instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def _claim(self, name: str, kind: Dict[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise ObservabilityError(
                    f"metric {name!r} already registered with a different type"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._claim(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._claim(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._claim(name, self._histograms)
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def timer(self, name: str, clock: Callable[[], float] = time.perf_counter) -> Timer:
        return Timer(self.histogram(name), clock)

    def namespaced(self, prefix: str) -> "NamespacedRegistry":
        """A view that prefixes every instrument name with ``<prefix>.``."""
        return NamespacedRegistry(self, prefix)

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-safe dump of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "peak": g.peak}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                    # JSON objects need string keys; sorted numerically.
                    "buckets": {
                        str(i): h.buckets[i] for i in sorted(h.buckets)
                    },
                }
                for name, h in sorted(self._histograms.items())
            },
        }


class NamespacedRegistry:
    """A prefixing view over a :class:`MetricsRegistry`.

    Instruments created through the view land in the parent registry under
    ``<prefix>.<name>``, so one service-wide registry can hold per-job
    metric namespaces (``job.<id>.trials_done``, ...) that still appear in
    a single ``snapshot()`` and merge like any other metrics.
    """

    __slots__ = ("_parent", "prefix")

    def __init__(self, parent: "MetricsRegistry", prefix: str) -> None:
        if not prefix:
            raise ObservabilityError("metric namespace prefix cannot be empty")
        self._parent = parent
        self.prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._parent.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self._parent.gauge(self._qualify(name))

    def histogram(self, name: str) -> Histogram:
        return self._parent.histogram(self._qualify(name))

    def timer(
        self, name: str, clock: Callable[[], float] = time.perf_counter
    ) -> Timer:
        return self._parent.timer(self._qualify(name), clock)

    def namespaced(self, prefix: str) -> "NamespacedRegistry":
        return NamespacedRegistry(self._parent, self._qualify(prefix))


def empty_snapshot() -> Dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold snapshots into one, in the order given.

    Counters add; gauges keep the maximum value and peak (a gauge is a
    level, so shard maxima are the only meaningful combination);
    histograms add counts bucket-by-bucket and fold sums left-to-right —
    callers must pass a deterministic order (campaign code uses task
    order) for float sums to be reproducible.
    """
    merged = empty_snapshot()
    counters = merged["counters"]
    gauges = merged["gauges"]
    histograms = merged["histograms"]
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, g in snap.get("gauges", {}).items():
            if name in gauges:
                gauges[name] = {
                    "value": max(gauges[name]["value"], g["value"]),
                    "peak": max(gauges[name]["peak"], g["peak"]),
                }
            else:
                gauges[name] = {"value": g["value"], "peak": g["peak"]}
        for name, h in snap.get("histograms", {}).items():
            if name not in histograms:
                histograms[name] = {
                    "count": 0, "sum": 0.0, "min": None, "max": None,
                    "buckets": {},
                }
            out = histograms[name]
            out["count"] += h["count"]
            out["sum"] += h["sum"]
            for bound_key in ("min", "max"):
                value = h.get(bound_key)
                if value is None:
                    continue
                if out[bound_key] is None:
                    out[bound_key] = value
                elif bound_key == "min":
                    out[bound_key] = min(out[bound_key], value)
                else:
                    out[bound_key] = max(out[bound_key], value)
            for index, count in h.get("buckets", {}).items():
                out["buckets"][index] = out["buckets"].get(index, 0) + count
    # Re-sort for a canonical layout whatever the input order was.
    merged["counters"] = dict(sorted(counters.items()))
    merged["gauges"] = dict(sorted(gauges.items()))
    for name, h in histograms.items():
        h["buckets"] = {
            key: h["buckets"][key] for key in sorted(h["buckets"], key=int)
        }
    merged["histograms"] = dict(sorted(histograms.items()))
    return merged


# ---------------------------------------------------------------------------
# Process-local registry scoping
# ---------------------------------------------------------------------------

_ACTIVE: List[MetricsRegistry] = []


def active_registry() -> Optional[MetricsRegistry]:
    """The innermost registry installed via :func:`use_registry`, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


class use_registry:
    """Context manager scoping ``registry`` as the process-local default.

    ``Machine`` (and anything else that calls :func:`active_registry` at
    construction time) adopts it, so a harness can meter a whole trial —
    however many machines it builds — without threading the registry
    through every experiment signature.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def __enter__(self) -> MetricsRegistry:
        _ACTIVE.append(self.registry)
        return self.registry

    def __exit__(self, *_exc: Any) -> None:
        _ACTIVE.pop()
