"""Telemetry subsystem: metrics registry, trace export, run manifests.

Three pillars (docs/observability.md has the operator's view):

* :mod:`repro.obs.metrics` — counters, gauges, fixed-log-bucket
  histograms and timers with deterministic snapshot/merge, emitted by the
  simulator loop, the world-switch path, introspection rounds, the attack
  state machines, and the campaign supervisor;
* :mod:`repro.obs.trace_export` — :class:`~repro.sim.tracing.TraceRecorder`
  records streamed to JSONL and rendered as Chrome/Perfetto
  ``trace_event`` JSON (``python -m repro trace ...``);
* :mod:`repro.obs.manifest` — per-campaign ``manifest.json`` evidence
  files and their rollup (``python -m repro metrics ...``).
"""

from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    merge_snapshots,
    use_registry,
)
from repro.obs.trace_export import (
    JsonlTraceWriter,
    PerfettoExporter,
    perfetto_trace,
    validate_trace_event_json,
    write_jsonl,
    write_perfetto,
)
from repro.obs.manifest import (
    build_manifest,
    load_manifest,
    render_manifest,
    write_manifest,
)

__all__ = [
    "MetricsRegistry",
    "active_registry",
    "merge_snapshots",
    "use_registry",
    "JsonlTraceWriter",
    "PerfettoExporter",
    "perfetto_trace",
    "validate_trace_event_json",
    "write_jsonl",
    "write_perfetto",
    "build_manifest",
    "load_manifest",
    "render_manifest",
    "write_manifest",
]
