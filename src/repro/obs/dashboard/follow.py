"""``--follow``: tail a running campaign into a live-refreshing dashboard.

A campaign only writes ``manifest.json`` when it finishes, so mid-run the
tailer reads what *is* on disk — the store's JSONL shards, which the
supervisor appends and fsyncs record by record — and renders a partial
dashboard with a progress section.  Every read path here is tolerant of
concurrent writes: a manifest caught mid-write (truncated JSON), a shard
with a torn trailing line, or a directory that does not exist yet all
degrade to "less data", never to an exception.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, IO, Optional, Tuple

from repro.campaign.store import _QUARANTINE, _parse_record
from repro.obs.dashboard.data import (
    dashboard_data_from_manifest,
    dashboard_json,
)
from repro.obs.dashboard.html import render_dashboard_html
from repro.obs.manifest import MANIFEST_NAME

#: exit codes follow_campaign returns (mirrors the campaign CLI: a
#: cancelled run exits 130, a tailer that gave up while the campaign was
#: still running exits 3).
FOLLOW_COMPLETE = 0
FOLLOW_STILL_RUNNING = 3
FOLLOW_CANCELLED = 130


def load_manifest_safe(campaign_dir: str) -> Optional[Dict[str, Any]]:
    """The campaign's manifest, or None if absent / mid-write / not one.

    Unlike :func:`~repro.obs.manifest.load_manifest` this never raises:
    a truncated JSON file (the writer got killed mid-dump) or a JSON body
    that is not a manifest (missing ``schema``) both read as "no manifest
    yet".
    """
    path = os.path.join(campaign_dir, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or "schema" not in manifest:
        return None
    return manifest


def store_progress(campaign_dir: str) -> Dict[str, Any]:
    """Read-only record counts from a (possibly mid-write) store.

    Deliberately does NOT go through :class:`ResultStore` — the tailer
    must never create directories or write ``index.json`` into a campaign
    the supervisor owns.  Torn trailing lines are counted, not raised.
    """
    if not os.path.isdir(campaign_dir):
        return {"available": False}
    records: Dict[str, str] = {}
    truncated = 0
    quarantined = 0
    try:
        names = sorted(os.listdir(campaign_dir))
    except OSError:
        return {"available": False}
    for name in names:
        path = os.path.join(campaign_dir, name)
        is_shard = name.startswith("shard-") and name.endswith(".jsonl")
        if not is_shard and name != _QUARANTINE:
            continue
        try:
            handle = open(path, "r", encoding="utf-8", errors="replace")
        except OSError:
            continue
        with handle:
            for line in handle:
                record = _parse_record(line)
                if record is None:
                    if line.strip():
                        truncated += 1
                    continue
                if is_shard:
                    records[record["key"]] = str(record.get("status", "ok"))
                else:
                    quarantined += 1
    statuses: Dict[str, int] = {}
    for status in records.values():
        statuses[status] = statuses.get(status, 0) + 1
    return {
        "available": True,
        "records": len(records),
        "statuses": dict(sorted(statuses.items())),
        "quarantined": quarantined,
        "truncated_records": truncated,
    }


def snapshot_once(
    campaign_dir: str,
    trace: Optional[Dict[str, Any]] = None,
    top: Optional[int] = None,
) -> Tuple[Dict[str, Any], str]:
    """One tail round: (dashboard data, state).

    ``state`` is ``"complete"`` / ``"cancelled"`` once the manifest
    exists, ``"running"`` while only shards exist, ``"waiting"`` before
    the campaign directory appears.  When the manifest exists the data is
    exactly what a non-follow render would produce, so the final write of
    a followed campaign equals ``repro dash`` run after the fact.
    """
    manifest = load_manifest_safe(campaign_dir)
    if manifest is not None:
        data = dashboard_data_from_manifest(manifest, trace=trace, top=top)
        state = "cancelled" if manifest.get("cancelled") else "complete"
        return data, state
    data = dashboard_data_from_manifest({}, trace=trace, top=top, partial=True)
    progress = store_progress(campaign_dir)
    data["progress"] = progress
    state = "running" if progress.get("available") else "waiting"
    return data, state


def _write_atomic(path: str, body: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(body)
    os.replace(tmp, path)


def follow_campaign(
    campaign_dir: str,
    out_html: str,
    out_json: Optional[str] = None,
    trace: Optional[Dict[str, Any]] = None,
    top: Optional[int] = None,
    interval: float = 2.0,
    max_rounds: Optional[int] = None,
    stream: Optional[IO[str]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Re-render ``out_html`` until the campaign's manifest lands.

    Returns 0 when the manifest reports a completed run, 130 when it
    reports a cancelled one, and 3 if ``max_rounds`` elapsed with the
    campaign still running (the dashboard on disk is the latest partial).
    """
    rounds = 0
    while True:
        rounds += 1
        data, state = snapshot_once(campaign_dir, trace=trace, top=top)
        _write_atomic(out_html, render_dashboard_html(data))
        if out_json:
            _write_atomic(out_json, dashboard_json(data))
        if stream is not None:
            progress = data.get("progress", {})
            detail = (
                f"{progress.get('records', 0)} record(s), "
                f"{progress.get('quarantined', 0)} quarantined"
                if state in ("running", "waiting")
                else f"{data.get('ok_trials', 0)} ok trial(s)"
            )
            stream.write(f"[dash] round {rounds}: {state} — {detail}\n")
            stream.flush()
        if state == "complete":
            return FOLLOW_COMPLETE
        if state == "cancelled":
            return FOLLOW_CANCELLED
        if max_rounds is not None and rounds >= max_rounds:
            return FOLLOW_STILL_RUNNING
        sleep(interval)
