"""Deterministic ``dashboard.json`` builder.

Everything the dashboard charts is materialized here first, as a plain
dict derived only from the campaign manifest, the result store's health
section, and (optionally) a Perfetto ``trace_event`` export.  Wall-clock
fields (``wall_seconds``, ``generated_unix``, per-trial ``elapsed``) and
byte sizes are deliberately excluded, so a serial run and a ``--jobs N``
run of the same campaign serialize to byte-identical JSON — the property
the ``dash-smoke`` CI job and the golden tests assert.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ObservabilityError
from repro.obs.manifest import load_manifest, manifest_rollup
from repro.obs.metrics import bucket_bound
from repro.obs.trace_export import validate_trace_event_json

#: Bumped when the dashboard data layout changes shape.
DASHBOARD_SCHEMA = "satin-dashboard/v1"

#: trial statuses rendered as "healthy" in the status strip.
_OK_STATUSES = ("ok",)


def _bucket_bars(histogram: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Bucket counts as chartable ``{le, count}`` rows (sorted by index)."""
    bars: List[Dict[str, Any]] = []
    for key in sorted(histogram.get("buckets", {}), key=int):
        bound = bucket_bound(int(key))
        bars.append(
            {
                "le": bound if bound is not None else "inf",
                "count": int(histogram["buckets"][key]),
            }
        )
    return bars


def _histogram_panel(name: str, histogram: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "name": name,
        "count": int(histogram.get("count") or 0),
        "min": histogram.get("min"),
        "max": histogram.get("max"),
        "mean": histogram.get("mean"),
        "p50": histogram.get("p50"),
        "p90": histogram.get("p90"),
        "p99": histogram.get("p99"),
        "bars": _bucket_bars(histogram),
    }


def _survival_section(manifest: Dict[str, Any]) -> Dict[str, Any]:
    survival = manifest.get("survival")
    if not isinstance(survival, dict):
        return {"available": False}
    classes = survival.get("classes") or {}
    rows = []
    for name in sorted(classes):
        row = classes[name] if isinstance(classes[name], dict) else {}
        injected = int(row.get("injected", 0) or 0)
        cells = {
            outcome: int(row.get(outcome, 0) or 0)
            for outcome in ("detected", "degraded", "missed")
        }
        rows.append({"fault": name, "injected": injected, **cells})
    return {
        "available": True,
        "scenario": survival.get("scenario"),
        "plan": survival.get("plan"),
        "plan_digest": survival.get("plan_digest"),
        "horizon": survival.get("horizon"),
        "totals": survival.get("totals", {}),
        "rows": rows,
    }


def lanes_from_trace(trace: Dict[str, Any]) -> Dict[str, Any]:
    """Gantt lane data from a Perfetto ``trace_event`` object.

    One lane per (pid, tid) track, labelled from the trace's own metadata
    events; spans are the complete ("X") events, instants the "i" marks.
    Lane and span order is fully determined by the trace contents.
    """
    validate_trace_event_json(trace)
    events = trace.get("traceEvents", [])
    process_names: Dict[int, str] = {}
    thread_names: Dict[tuple, str] = {}
    spans: Dict[tuple, List[Dict[str, Any]]] = {}
    instants: Dict[tuple, List[Dict[str, Any]]] = {}
    end_ts = 0.0
    for event in events:
        phase = event.get("ph")
        pid = event["pid"]
        if phase == "M":
            if event.get("name") == "process_name":
                process_names[pid] = str(event["args"].get("name", pid))
            elif event.get("name") == "thread_name":
                thread_names[(pid, event.get("tid"))] = str(
                    event["args"].get("name", event.get("tid"))
                )
            continue
        track = (pid, event["tid"])
        if phase == "X":
            ts = float(event["ts"])
            dur = float(event.get("dur", 0.0))
            end_ts = max(end_ts, ts + dur)
            spans.setdefault(track, []).append(
                {
                    "name": event.get("name", ""),
                    "cat": event.get("cat", ""),
                    "ts": ts,
                    "dur": dur,
                }
            )
        elif phase in ("i", "I"):
            ts = float(event["ts"])
            end_ts = max(end_ts, ts)
            instants.setdefault(track, []).append(
                {
                    "name": event.get("name", ""),
                    "cat": event.get("cat", ""),
                    "ts": ts,
                }
            )
    tracks = []
    for track in sorted(set(spans) | set(instants)):
        pid, tid = track
        tracks.append(
            {
                "pid": pid,
                "tid": tid,
                "process": process_names.get(pid, f"pid {pid}"),
                "track": thread_names.get(track, f"tid {tid}"),
                "spans": sorted(
                    spans.get(track, []), key=lambda s: (s["ts"], s["name"])
                ),
                "instants": sorted(
                    instants.get(track, []), key=lambda s: (s["ts"], s["name"])
                ),
            }
        )
    return {
        "available": True,
        "events": len(events),
        "end_ts": end_ts,
        "span_count": sum(len(t["spans"]) for t in tracks),
        "tracks": tracks,
    }


def _store_section(manifest: Dict[str, Any]) -> Dict[str, Any]:
    store = manifest.get("store")
    if not isinstance(store, dict):
        return {"available": False}
    return dict(store, available=True)


def build_dashboard_data(
    path: str,
    trace: Optional[Dict[str, Any]] = None,
    top: Optional[int] = None,
) -> Dict[str, Any]:
    """Assemble the dashboard data for one campaign directory.

    ``path`` is anything :func:`~repro.obs.manifest.find_manifest`
    accepts; ``trace`` is an optional already-loaded ``trace_event``
    object (the Gantt panel renders "no trace" without one); ``top``
    trims counters/histograms through the shared
    :func:`~repro.obs.manifest.manifest_rollup` path.
    """
    manifest = load_manifest(path)
    return dashboard_data_from_manifest(manifest, trace=trace, top=top)


def dashboard_data_from_manifest(
    manifest: Dict[str, Any],
    trace: Optional[Dict[str, Any]] = None,
    top: Optional[int] = None,
    partial: bool = False,
) -> Dict[str, Any]:
    """Same as :func:`build_dashboard_data` from an in-memory manifest.

    ``partial=True`` marks a dashboard built mid-run by the ``--follow``
    tailer, where the manifest may not exist yet.
    """
    rollup = manifest_rollup(manifest, top=top)
    totals = dict(rollup.get("totals", {}))
    totals.pop("wall_seconds", None)  # wall clock breaks byte-identity
    spec = dict(rollup.get("spec", {}))
    spec.pop("jobs", None)  # executor parallelism is not a result
    status = dict(rollup.get("trial_status", {}))
    histograms = [
        _histogram_panel(name, rollup["histograms"][name])
        for name in sorted(rollup.get("histograms", {}))
    ]
    data: Dict[str, Any] = {
        "schema": DASHBOARD_SCHEMA,
        "partial": bool(partial),
        "campaign": {
            "campaign_id": rollup.get("campaign_id"),
            "experiment_id": rollup.get("experiment_id"),
            "code_version": rollup.get("code_version"),
            "cancelled": bool(rollup.get("cancelled", False)),
            "spec": spec,
        },
        "totals": totals,
        "trial_status": status,
        "ok_trials": sum(status.get(s, 0) for s in _OK_STATUSES),
        "counters": rollup.get("counters", {}),
        "gauges": rollup.get("gauges", {}),
        "histograms": histograms,
        "survival": _survival_section(manifest),
        "store": _store_section(manifest),
        "lanes": lanes_from_trace(trace) if trace else {"available": False},
    }
    if "batch" in rollup:
        # Wall-clock dispatch accounting (and the underperformance note
        # derived from it) legitimately differs between serial and
        # --jobs N runs — strip it so dashboard.json stays byte-identical
        # across executors.
        data["batch"] = {
            key: value
            for key, value in rollup["batch"].items()
            if key not in ("dispatch_seconds", "member_seconds", "underperformance")
        }
    return data


def dashboard_json(data: Dict[str, Any]) -> str:
    """Canonical serialization — the byte-comparable artifact."""
    return json.dumps(data, sort_keys=True, indent=1) + "\n"


def load_trace_file(path: str) -> Dict[str, Any]:
    """Load and validate a ``trace_event`` JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObservabilityError(f"cannot read trace {path!r}: {exc}")
    validate_trace_event_json(trace)
    return trace
