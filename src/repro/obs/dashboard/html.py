"""Static HTML rendering of the dashboard data.

One self-contained page: the deterministic data dict is embedded as
``const DATA = {...}`` and a small inline script draws every panel with
DOM + SVG.  No external stylesheets, fonts, scripts, or fetches — the
file opens identically from a CI artifact, ``file://``, or a tarball.
"""

from __future__ import annotations

import json
from typing import Any, Dict

_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; padding: 1.2rem 1.6rem; background: #14171c; color: #d7dce2;
         font: 14px/1.45 ui-monospace, "SF Mono", Menlo, Consolas, monospace; }
  h1 { font-size: 1.15rem; margin: 0 0 .25rem; color: #fff; }
  h2 { font-size: .95rem; margin: 1.4rem 0 .5rem; color: #9fb6d4;
       border-bottom: 1px solid #2a313b; padding-bottom: .25rem; }
  .sub { color: #7d8795; margin-bottom: 1rem; }
  .tiles { display: flex; flex-wrap: wrap; gap: .6rem; }
  .tile { background: #1c2128; border: 1px solid #2a313b; border-radius: 6px;
          padding: .55rem .9rem; min-width: 7.5rem; }
  .tile .v { font-size: 1.25rem; color: #fff; }
  .tile .k { font-size: .72rem; color: #7d8795; text-transform: uppercase; }
  .tile.bad .v { color: #ff7b72; }
  .tile.warn .v { color: #e3b341; }
  .tile.good .v { color: #7ee787; }
  table { border-collapse: collapse; }
  th, td { border: 1px solid #2a313b; padding: .3rem .6rem; text-align: right; }
  th { color: #9fb6d4; font-weight: normal; }
  td.name { text-align: left; color: #d7dce2; }
  .cell { min-width: 3.2rem; }
  .muted { color: #7d8795; }
  svg { display: block; background: #1c2128; border: 1px solid #2a313b;
        border-radius: 6px; }
  .legend { font-size: .75rem; color: #7d8795; margin-top: .3rem; }
  .banner { background: #3b2426; border: 1px solid #6e3a3d; color: #ff7b72;
            padding: .5rem .8rem; border-radius: 6px; margin-bottom: 1rem; }
  .banner.partial { background: #332b17; border-color: #6e5a1e; color: #e3b341; }
</style>
</head>
<body>
<div id="app"></div>
<script>
const DATA = __DATA__;
(function () {
  "use strict";
  const app = document.getElementById("app");
  const SVG = "http://www.w3.org/2000/svg";

  function el(tag, attrs, children) {
    const node = tag === "svg" || tag === "rect" || tag === "text" ||
                 tag === "line" || tag === "g" || tag === "title"
      ? document.createElementNS(SVG, tag)
      : document.createElement(tag);
    for (const key in (attrs || {})) {
      if (key === "textContent") node.textContent = attrs[key];
      else node.setAttribute(key, attrs[key]);
    }
    (children || []).forEach((child) => node.appendChild(child));
    return node;
  }
  function fmt(value) {
    if (value === null || value === undefined) return "–";
    if (typeof value !== "number") return String(value);
    if (Number.isInteger(value)) return String(value);
    return value.toPrecision(3);
  }
  function tile(label, value, klass) {
    return el("div", { class: "tile " + (klass || "") }, [
      el("div", { class: "v", textContent: fmt(value) }),
      el("div", { class: "k", textContent: label }),
    ]);
  }
  const CAT_COLORS = { monitor: "#58a6ff", satin: "#7ee787" };
  function catColor(cat) {
    if (CAT_COLORS[cat]) return CAT_COLORS[cat];
    let hash = 0;
    for (let i = 0; i < cat.length; i++) hash = (hash * 31 + cat.charCodeAt(i)) >>> 0;
    return "hsl(" + (hash % 360) + ", 55%, 60%)";
  }

  // ---- header -----------------------------------------------------------
  const campaign = DATA.campaign || {};
  app.appendChild(el("h1", {
    textContent: "SATIN campaign " + (campaign.experiment_id || "?") +
                 " — " + (campaign.campaign_id || "(pending)") }));
  app.appendChild(el("div", { class: "sub",
    textContent: "code " + (campaign.code_version || "?") +
                 " · schema " + DATA.schema }));
  if (campaign.cancelled)
    app.appendChild(el("div", { class: "banner",
      textContent: "CANCELLED — partial results only" }));
  if (DATA.partial)
    app.appendChild(el("div", { class: "banner partial",
      textContent: "LIVE — campaign still running; manifest not written yet" }));

  // ---- summary tiles ----------------------------------------------------
  const totals = DATA.totals || {};
  const status = DATA.trial_status || {};
  const tiles = el("div", { class: "tiles" });
  if (DATA.partial) {
    const progress = DATA.progress || {};
    tiles.appendChild(tile("records so far", progress.records || 0));
    tiles.appendChild(tile("quarantined", progress.quarantined || 0,
                           progress.quarantined ? "bad" : "good"));
    tiles.appendChild(tile("torn lines", progress.truncated_records || 0,
                           progress.truncated_records ? "warn" : ""));
  } else {
    tiles.appendChild(tile("trials", totals.trials));
    tiles.appendChild(tile("ok", DATA.ok_trials, "good"));
    tiles.appendChild(tile("quarantined", totals.quarantined,
                           totals.quarantined ? "bad" : "good"));
    tiles.appendChild(tile("cached", totals.cached));
    Object.keys(status).sort().forEach((name) => {
      if (name !== "ok") tiles.appendChild(tile(name, status[name], "warn"));
    });
  }
  app.appendChild(tiles);

  // ---- survival heatmap -------------------------------------------------
  app.appendChild(el("h2", { textContent: "Survival matrix" }));
  const survival = DATA.survival || {};
  if (!survival.available || !(survival.rows || []).length) {
    app.appendChild(el("div", { class: "muted",
      textContent: "no survival section (not a chaos campaign)" }));
  } else {
    const OUT = ["detected", "degraded", "missed"];
    const HUES = { detected: "140", degraded: "45", missed: "0" };
    const table = el("table");
    table.appendChild(el("tr", {},
      [el("th", { textContent: "fault class" }),
       el("th", { textContent: "injected" })]
        .concat(OUT.map((o) => el("th", { textContent: o })))));
    (survival.rows || []).forEach((row) => {
      const tr = el("tr", {}, [
        el("td", { class: "name", textContent: row.fault }),
        el("td", { textContent: String(row.injected) }),
      ]);
      OUT.forEach((outcome) => {
        const n = row[outcome] || 0;
        const share = row.injected ? n / row.injected : 0;
        const td = el("td", { class: "cell", textContent: String(n) });
        td.style.background =
          "hsla(" + HUES[outcome] + ", 65%, 45%, " + (0.08 + 0.72 * share) + ")";
        tr.appendChild(td);
      });
      table.appendChild(tr);
    });
    app.appendChild(table);
    const st = survival.totals || {};
    app.appendChild(el("div", { class: "legend",
      textContent: "plan " + survival.plan + " · horizon " + survival.horizon +
        "s · " + fmt(st.injected) + " injected / " + fmt(st.detected) +
        " detected / " + fmt(st.degraded) + " degraded / " +
        fmt(st.missed) + " missed" }));
  }

  // ---- Gantt lanes ------------------------------------------------------
  app.appendChild(el("h2", { textContent: "Core timeline (Perfetto spans)" }));
  const lanes = DATA.lanes || {};
  if (!lanes.available || !(lanes.tracks || []).length) {
    app.appendChild(el("div", { class: "muted",
      textContent: "no trace attached (pass --trace <perfetto.json>)" }));
  } else {
    const W = 940, LABEL = 170, LANE = 22, PAD = 6;
    const tracks = lanes.tracks;
    const H = tracks.length * LANE + 2 * PAD + 16;
    const span = Math.max(lanes.end_ts, 1e-9);
    const sx = (ts) => LABEL + (W - LABEL - 8) * (ts / span);
    const svg = el("svg", { width: W, height: H,
                            viewBox: "0 0 " + W + " " + H });
    tracks.forEach((track, i) => {
      const y = PAD + i * LANE;
      if (i % 2 === 0)
        svg.appendChild(el("rect", { x: 0, y: y, width: W, height: LANE,
                                     fill: "#22272f" }));
      svg.appendChild(el("text", {
        x: 6, y: y + LANE - 7, fill: "#9fb6d4", "font-size": "11",
        textContent: track.process + " / " + track.track }));
      (track.spans || []).forEach((s) => {
        const x0 = sx(s.ts), x1 = sx(s.ts + s.dur);
        const rect = el("rect", {
          x: x0, y: y + 3, width: Math.max(x1 - x0, 1.5),
          height: LANE - 7, rx: 2, fill: catColor(s.cat) });
        rect.appendChild(el("title", {
          textContent: s.name + " [" + s.cat + "] ts=" + s.ts +
                       "us dur=" + s.dur + "us" }));
        svg.appendChild(rect);
      });
      (track.instants || []).forEach((s) => {
        const x = sx(s.ts);
        const mark = el("line", {
          x1: x, y1: y + 2, x2: x, y2: y + LANE - 3,
          stroke: catColor(s.cat), "stroke-width": 1.5 });
        mark.appendChild(el("title", {
          textContent: s.name + " [" + s.cat + "] ts=" + s.ts + "us" }));
        svg.appendChild(mark);
      });
    });
    // time axis
    const axisY = PAD + tracks.length * LANE + 11;
    [0, 0.25, 0.5, 0.75, 1].forEach((f) => {
      svg.appendChild(el("text", {
        x: sx(span * f), y: axisY, fill: "#7d8795", "font-size": "10",
        "text-anchor": f === 0 ? "start" : "middle",
        textContent: (span * f / 1000).toPrecision(3) + "ms" }));
    });
    app.appendChild(svg);
    app.appendChild(el("div", { class: "legend",
      textContent: lanes.span_count + " span(s) across " + tracks.length +
        " track(s), " + lanes.events + " trace event(s)" }));
  }

  // ---- latency histograms ----------------------------------------------
  app.appendChild(el("h2", { textContent: "Latency histograms" }));
  const histograms = DATA.histograms || [];
  if (!histograms.length) {
    app.appendChild(el("div", { class: "muted",
      textContent: "no merged histograms in the manifest" }));
  } else {
    histograms.forEach((h) => {
      const bars = h.bars || [];
      const W = 520, H = 96, PAD = 4;
      const bw = bars.length ? (W - 2 * PAD) / bars.length : 0;
      const top = Math.max(1, ...bars.map((b) => b.count));
      const svg = el("svg", { width: W, height: H,
                              viewBox: "0 0 " + W + " " + H });
      bars.forEach((b, i) => {
        const bh = (H - 22) * (b.count / top);
        const rect = el("rect", {
          x: PAD + i * bw + 1, y: H - 18 - bh,
          width: Math.max(bw - 2, 1), height: Math.max(bh, b.count ? 2 : 0),
          fill: "#58a6ff" });
        rect.appendChild(el("title", {
          textContent: "<= " + fmt(b.le) + "s : " + b.count }));
        svg.appendChild(rect);
      });
      svg.appendChild(el("text", { x: PAD, y: H - 5, fill: "#9fb6d4",
        "font-size": "11", textContent: h.name }));
      app.appendChild(svg);
      app.appendChild(el("div", { class: "legend",
        textContent: "n=" + h.count + " · mean " + fmt(h.mean) +
          " · p50 " + fmt(h.p50) + " · p90 " + fmt(h.p90) +
          " · p99 " + fmt(h.p99) +
          " · min " + fmt(h.min) + " · max " + fmt(h.max) }));
    });
  }

  // ---- store health -----------------------------------------------------
  app.appendChild(el("h2", { textContent: "Result store health" }));
  const store = DATA.store || {};
  if (!store.available) {
    app.appendChild(el("div", { class: "muted",
      textContent: "no store-health section in the manifest" }));
  } else {
    const index = store.index || {};
    const row = el("div", { class: "tiles" }, [
      tile("live records", store.records),
      tile("shards", Object.keys(store.shards || {}).length),
      tile("quarantined", store.quarantined, store.quarantined ? "bad" : "good"),
      tile("truncated", store.truncated_records,
           store.truncated_records ? "warn" : ""),
      tile("pinned", store.pinned),
      tile("keyed reads", index.record_reads),
      tile("full scans", index.full_scans, index.full_scans > 1 ? "warn" : ""),
      tile("tail scans", index.tail_scans),
    ]);
    app.appendChild(row);
    if (index.lazy_reindexed)
      app.appendChild(el("div", { class: "legend",
        textContent: "pre-index store migrated on first open" }));
  }

  // ---- counters ---------------------------------------------------------
  const counters = DATA.counters || {};
  const names = Object.keys(counters).sort();
  if (names.length) {
    app.appendChild(el("h2", { textContent: "Merged counters" }));
    const table = el("table");
    names.forEach((name) => {
      table.appendChild(el("tr", {}, [
        el("td", { class: "name", textContent: name }),
        el("td", { textContent: String(counters[name]) }),
      ]));
    });
    app.appendChild(table);
  }
})();
</script>
</body>
</html>
"""


def render_dashboard_html(data: Dict[str, Any]) -> str:
    """The full static page for one dashboard data dict."""
    campaign = data.get("campaign", {}) or {}
    title = "SATIN dashboard — {0}".format(
        campaign.get("campaign_id") or campaign.get("experiment_id") or "campaign"
    )
    # "</" must not appear verbatim inside an inline <script> block.
    blob = json.dumps(data, sort_keys=True).replace("</", "<\\/")
    return _TEMPLATE.replace("__TITLE__", title).replace("__DATA__", blob)
