"""Campaign dashboard: deterministic ``dashboard.json`` + static HTML.

``python -m repro dash <campaign-dir>`` renders what the obs subsystem
already emits — the survival matrix, per-core Gantt lanes from a Perfetto
span export, latency histograms with p50/p90/p99, and store health — as a
zero-dependency static HTML page (inline JS/SVG, no network fetches).

All chart data is first materialized as :func:`build_dashboard_data` —
sorted keys, derived only from the manifest + store (+ an optional trace
file) — so a serial and a ``--jobs N`` run of the same campaign produce
byte-identical ``dashboard.json``, and the HTML is just a template around
it.  ``--follow`` tails a running campaign by re-reading the manifest and
shards incrementally (:func:`follow_campaign`).
"""

from repro.obs.dashboard.data import (  # noqa: F401
    DASHBOARD_SCHEMA,
    build_dashboard_data,
    dashboard_json,
    lanes_from_trace,
)
from repro.obs.dashboard.follow import (  # noqa: F401
    follow_campaign,
    load_manifest_safe,
    store_progress,
)
from repro.obs.dashboard.html import render_dashboard_html  # noqa: F401
