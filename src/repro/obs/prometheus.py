"""Prometheus text exposition for :class:`MetricsRegistry` snapshots.

``GET /metrics`` on ``repro serve`` speaks the Prometheus text format
(version 0.0.4) so a stock Prometheus/VictoriaMetrics scraper can watch a
long-running campaign service without an exporter sidecar.  The renderer
works from the registry's plain-dict :meth:`snapshot` form, so it needs no
live registry and is trivially golden-testable.

Mapping:

* counters   -> ``counter`` families, verbatim;
* gauges     -> two ``gauge`` families: the value and ``<name>_peak``;
* histograms -> ``histogram`` families with *cumulative* ``_bucket``
  series (``le`` = the shared log-bucket upper bounds), ``_sum`` and
  ``_count``.

Metric names are sanitized (dots and other illegal characters become
``_``), so the per-job namespaced counters (``job.job-0001-ab12cd34.*``)
come out as ``repro_job_job_0001_ab12cd34_*``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from repro.obs.metrics import bucket_bound

#: Content type a 0.0.4 text-format response must declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """A legal Prometheus metric name for one registry metric name."""
    flat = _NAME_RE.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _fmt(value: Any) -> str:
    """A Prometheus sample value ("1", "0.25", "1e-09", "NaN")."""
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    snapshot: Dict[str, Any], prefix: str = "repro"
) -> str:
    """Render one registry snapshot as Prometheus 0.0.4 text."""
    lines: List[str] = []

    def family(name: str, kind: str) -> str:
        flat = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {flat} repro metric {name}")
        lines.append(f"# TYPE {flat} {kind}")
        return flat

    for name in sorted(snapshot.get("counters", {})):
        flat = family(name, "counter")
        lines.append(f"{flat} {_fmt(snapshot['counters'][name])}")

    for name in sorted(snapshot.get("gauges", {})):
        gauge = snapshot["gauges"][name]
        flat = family(name, "gauge")
        lines.append(f"{flat} {_fmt(gauge.get('value'))}")
        flat_peak = family(name + ".peak", "gauge")
        lines.append(f"{flat_peak} {_fmt(gauge.get('peak'))}")

    for name in sorted(snapshot.get("histograms", {})):
        histogram = snapshot["histograms"][name]
        flat = family(name, "histogram")
        buckets = histogram.get("buckets", {})
        cumulative = 0
        for key in sorted(buckets, key=int):
            bound = bucket_bound(int(key))
            if bound is None:
                continue  # overflow lands in the explicit +Inf bucket below
            cumulative += int(buckets[key])
            lines.append(f'{flat}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        count = int(histogram.get("count", 0))
        lines.append(f'{flat}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{flat}_sum {_fmt(histogram.get('sum', 0.0))}")
        lines.append(f"{flat}_count {count}")

    return "\n".join(lines) + ("\n" if lines else "")
