"""Trace export: JSONL streaming and Chrome/Perfetto ``trace_event`` JSON.

The :class:`~repro.sim.tracing.TraceRecorder` is the simulator's flight
recorder; this module turns its records into files other tools read:

* **JSONL** — one record per line, streamed as records are emitted
  (:class:`JsonlTraceWriter` attaches as a recorder listener) or dumped
  after the run (:func:`write_jsonl`).
* **Perfetto** — the Chrome ``trace_event`` JSON format that
  ``ui.perfetto.dev`` and ``chrome://tracing`` open directly.  The track
  layout makes the paper's Figure-3/Figure-4 race visible at a glance:
  one *process* per core, with a ``world`` track carrying secure-world
  residency spans, an ``introspection`` track carrying per-area scan
  spans, and an ``events`` track for that core's instants; everything
  without a core affinity lands on per-category tracks of a ``machine``
  pseudo-process (pid 0).

Timestamps: trace records carry simulated seconds; ``trace_event`` wants
microseconds, so ``ts = time * 1e6``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.sim.tracing import TraceRecord

#: pid of the pseudo-process that carries core-less instant events.
MACHINE_PID = 0

#: Thread ids inside each per-core process.
WORLD_TID = 1
INTROSPECTION_TID = 2
EVENTS_TID = 3

_SECONDS_TO_US = 1e6

#: Event phases this exporter emits (a subset of the trace_event spec).
_KNOWN_PHASES = frozenset({"X", "i", "I", "M", "B", "E", "C"})


def record_to_json(record: TraceRecord) -> Dict[str, Any]:
    """The JSONL form of one trace record."""
    return {
        "time": record.time,
        "category": record.category,
        "message": record.message,
        "fields": dict(record.fields),
    }


class JsonlTraceWriter:
    """Recorder listener that streams each record as one JSON line.

    Attach with ``recorder.add_listener(writer)``; records hit the file
    as they are emitted, so even a run that dies mid-simulation leaves a
    readable prefix.
    """

    def __init__(self, handle: IO[str]) -> None:
        self.handle = handle
        self.written = 0

    def __call__(self, record: TraceRecord) -> None:
        self.handle.write(json.dumps(record_to_json(record), sort_keys=True) + "\n")
        self.written += 1


def write_jsonl(records: Iterable[TraceRecord], path: str) -> int:
    """Dump records to a JSONL file; returns the line count."""
    with open(path, "w", encoding="utf-8") as handle:
        writer = JsonlTraceWriter(handle)
        for record in records:
            writer(record)
    return writer.written


def core_pid(core_index: int) -> int:
    """Perfetto pid for a core (pid 0 is the machine pseudo-process)."""
    return core_index + 1


class PerfettoExporter:
    """Incremental ``trace_event`` builder over a record stream.

    Usable both ways: feed retained records after a run, or attach as a
    recorder listener (``recorder.add_listener(exporter.feed)``) and call
    :meth:`finish` when the simulation stops.
    """

    def __init__(self, core_labels: Optional[Dict[int, str]] = None) -> None:
        #: core index -> display name ("core 0 (A53)"); grown on demand.
        self.core_labels = dict(core_labels or {})
        self.events: List[Dict[str, Any]] = []
        self._seen_cores: set = set()
        self._category_tids: Dict[str, int] = {}
        # open span state: core index -> (start time, args)
        self._secure_open: Dict[int, Tuple[float, Dict[str, Any]]] = {}
        self._scan_open: Dict[int, Tuple[float, Dict[str, Any]]] = {}
        self._last_time = 0.0

    # ------------------------------------------------------------------
    # Track metadata
    # ------------------------------------------------------------------
    def _metadata(self, pid: int, tid: Optional[int], name: str) -> None:
        event: Dict[str, Any] = {
            "ph": "M",
            "pid": pid,
            "name": "process_name" if tid is None else "thread_name",
            "args": {"name": name},
        }
        if tid is not None:
            event["tid"] = tid
        self.events.append(event)

    def _ensure_core(self, core_index: int) -> int:
        pid = core_pid(core_index)
        if core_index not in self._seen_cores:
            self._seen_cores.add(core_index)
            label = self.core_labels.get(core_index, f"core {core_index}")
            self._metadata(pid, None, label)
            self._metadata(pid, WORLD_TID, "world")
            self._metadata(pid, INTROSPECTION_TID, "introspection")
            self._metadata(pid, EVENTS_TID, "events")
        return pid

    def _category_tid(self, category: str) -> int:
        if category not in self._category_tids:
            if not self._category_tids:
                self._metadata(MACHINE_PID, None, "machine")
            tid = len(self._category_tids) + 1
            self._category_tids[category] = tid
            self._metadata(MACHINE_PID, tid, category)
        return self._category_tids[category]

    # ------------------------------------------------------------------
    # Record consumption
    # ------------------------------------------------------------------
    def feed(self, record: TraceRecord) -> None:
        self._last_time = max(self._last_time, record.time)
        key = (record.category, record.message)
        if key == ("monitor", "secure entry begins"):
            core = int(record.fields["core"])
            self._ensure_core(core)
            self._secure_open[core] = (record.time, dict(record.fields))
            return
        if key == ("monitor", "normal world resumed"):
            core = int(record.fields["core"])
            opened = self._secure_open.pop(core, None)
            if opened is not None:
                self._complete(core, WORLD_TID, "secure world", "monitor",
                               opened[0], record.time, opened[1])
            return
        if key == ("satin", "round begins"):
            core = int(record.fields["core"])
            self._ensure_core(core)
            self._scan_open[core] = (record.time, dict(record.fields))
            return
        if key == ("satin", "round complete"):
            core = int(record.fields["core"])
            opened = self._scan_open.pop(core, None)
            if opened is not None:
                args = dict(opened[1])
                args.update(record.fields)
                self._complete(
                    core, INTROSPECTION_TID,
                    f"scan area {args.get('area', '?')}", "satin",
                    opened[0], record.time, args,
                )
                return
            # fall through: a complete without a begin is still an instant
        self._instant(record)

    def _complete(
        self,
        core_index: int,
        tid: int,
        name: str,
        category: str,
        start: float,
        end: float,
        args: Dict[str, Any],
    ) -> None:
        self.events.append(
            {
                "ph": "X",
                "pid": self._ensure_core(core_index),
                "tid": tid,
                "name": name,
                "cat": category,
                "ts": start * _SECONDS_TO_US,
                "dur": max(end - start, 0.0) * _SECONDS_TO_US,
                "args": args,
            }
        )

    def _instant(self, record: TraceRecord) -> None:
        core = record.fields.get("core")
        if isinstance(core, int):
            pid = self._ensure_core(core)
            tid = EVENTS_TID
        else:
            pid = MACHINE_PID
            tid = self._category_tid(record.category)
        self.events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "name": record.message,
                "cat": record.category,
                "ts": record.time * _SECONDS_TO_US,
                "args": dict(record.fields),
            }
        )

    # ------------------------------------------------------------------
    def finish(self) -> Dict[str, Any]:
        """Close dangling spans at the last seen time and return the JSON."""
        for core, (start, args) in sorted(self._secure_open.items()):
            args = dict(args, truncated=True)
            self._complete(core, WORLD_TID, "secure world", "monitor",
                           start, self._last_time, args)
        self._secure_open.clear()
        for core, (start, args) in sorted(self._scan_open.items()):
            args = dict(args, truncated=True)
            self._complete(core, INTROSPECTION_TID,
                           f"scan area {args.get('area', '?')}", "satin",
                           start, self._last_time, args)
        self._scan_open.clear()
        return {"displayTimeUnit": "ms", "traceEvents": list(self.events)}


def perfetto_trace(
    records: Iterable[TraceRecord],
    core_labels: Optional[Dict[int, str]] = None,
) -> Dict[str, Any]:
    """Batch conversion: records -> ``trace_event`` JSON object."""
    exporter = PerfettoExporter(core_labels)
    for record in records:
        exporter.feed(record)
    return exporter.finish()


def write_perfetto(
    records: Iterable[TraceRecord],
    path: str,
    core_labels: Optional[Dict[int, str]] = None,
) -> Dict[str, Any]:
    """Convert, validate, and write; returns the trace object."""
    trace = perfetto_trace(records, core_labels)
    validate_trace_event_json(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
        handle.write("\n")
    return trace


def machine_core_labels(machine) -> Dict[int, str]:
    """Display labels for a machine's cores ("core 2 (A57)")."""
    return {
        core.index: f"core {core.index} ({core.cluster_name})"
        for core in machine.cores
    }


# ---------------------------------------------------------------------------
# Schema validation (the CI smoke gate)
# ---------------------------------------------------------------------------


def validate_trace_event_json(trace: Any) -> int:
    """Check ``trace`` against the ``trace_event`` rules we rely on.

    Not the full Chrome spec — the subset Perfetto needs to render our
    tracks: the envelope shape, known phases, numeric non-negative
    timestamps, integer pid/tid, and durations on complete events.
    Raises :class:`~repro.errors.ObservabilityError` on the first
    violation; returns the event count when valid.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ObservabilityError("trace must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError("'traceEvents' must be a list")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ObservabilityError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            raise ObservabilityError(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("pid"), int):
            raise ObservabilityError(f"{where}: pid must be an integer")
        if not isinstance(event.get("name"), str):
            raise ObservabilityError(f"{where}: name must be a string")
        if phase == "M":
            if not isinstance(event.get("args"), dict):
                raise ObservabilityError(f"{where}: metadata needs args")
            continue
        if not isinstance(event.get("tid"), int):
            raise ObservabilityError(f"{where}: tid must be an integer")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ObservabilityError(f"{where}: ts must be a number >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ObservabilityError(f"{where}: X event needs dur >= 0")
    return len(events)
