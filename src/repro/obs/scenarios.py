"""Named trace scenarios for ``python -m repro trace``.

A scenario is a reproducible stack recipe plus a pacing rule: build the
machine, run long enough for the interesting dynamics to appear, and
hand the recorder's records to the exporters.  ``figure4`` is the
headline: SATIN's randomized introspection racing the KProber-II /
TZ-Evader hide-and-restore loop — the very race of the paper's
Figure 3/4, inspectable span-by-span in ``ui.perfetto.dev``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import preset_config
from repro.errors import ObservabilityError
from repro.experiments.common import Stack, build_stack
from repro.sim.tracing import TraceRecord


@dataclass(frozen=True)
class TraceScenario:
    """One runnable trace recipe."""

    name: str
    title: str
    with_satin: bool
    with_evader: bool


SCENARIOS: Dict[str, TraceScenario] = {
    scenario.name: scenario
    for scenario in (
        TraceScenario(
            "figure4",
            "SATIN introspection vs TZ-Evader hide/restore (the Figure-4 race)",
            with_satin=True,
            with_evader=True,
        ),
        TraceScenario(
            "baseline",
            "SATIN rounds on a benign kernel (no attacker)",
            with_satin=True,
            with_evader=False,
        ),
        TraceScenario(
            "idle",
            "rich OS only: scheduler and timer activity",
            with_satin=False,
            with_evader=False,
        ),
    )
}


def scenario_by_name(name: str) -> TraceScenario:
    try:
        return SCENARIOS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ObservabilityError(
            f"unknown trace scenario {name!r} (known: {known})"
        ) from None


def build_scenario_stack(
    scenario: TraceScenario, seed: int = 2019, preset: str = "juno_r1"
) -> Stack:
    return build_stack(
        machine_config=preset_config(preset, seed=seed),
        with_satin=scenario.with_satin,
        with_evader=scenario.with_evader,
    )


def run_scenario(
    stack: Stack,
    scenario: TraceScenario,
    duration: Optional[float] = None,
    rounds: int = 4,
) -> None:
    """Advance the stack far enough to make the trace interesting.

    ``duration`` (simulated seconds) wins when given; otherwise run until
    ``rounds`` introspection rounds completed (capped at 20x the expected
    span so a misconfigured run terminates) or, without SATIN, for one
    second of simulated time.
    """
    machine = stack.machine
    if duration is not None:
        machine.run_for(duration)
        return
    if stack.satin is None:
        machine.run_for(1.0)
        return
    tp = stack.satin.policy.tp
    deadline = machine.now + max(rounds, 1) * tp * 20.0
    while stack.satin.round_count < rounds and machine.now < deadline:
        machine.run_for(tp)


def scenario_records(stack: Stack) -> List[TraceRecord]:
    return list(stack.machine.trace.records())
