"""Campaign run manifests: attestable evidence beside the result cache.

Every campaign run writes ``manifest.json`` into its cache directory
(``.repro-cache/<campaign_id>/``), recording what ran, under which code
version and config digest, how each trial fared (wall time, attempts,
cache hit, quarantine), and — the part that must be bit-reproducible —
the **merged deterministic metrics** of every trial, folded in task
order through :func:`repro.obs.metrics.merge_snapshots`.  A ``--jobs 4``
run and a ``--jobs 0`` run over the same grid therefore render identical
``metrics`` sections; only the wall-clock ``supervisor`` section may
differ.

``python -m repro metrics <campaign-dir>`` renders the rollup.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.metrics import bucket_bound, merge_snapshots

MANIFEST_NAME = "manifest.json"

#: Bumped when the manifest layout changes shape.
MANIFEST_SCHEMA = "satin-campaign-manifest/v1"


def build_manifest(
    spec,
    result,
    wall_seconds: float,
    supervisor_snapshot: Optional[Dict[str, Any]] = None,
    cancelled: bool = False,
    batch: Optional[Dict[str, Any]] = None,
    store_health: Optional[Dict[str, Any]] = None,
    planner: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest for one finished campaign run.

    ``spec``/``result`` are the campaign's
    :class:`~repro.campaign.runner.CampaignSpec` and
    :class:`~repro.campaign.runner.CampaignResult` (typed loosely to keep
    this module import-light for the CLI's ``metrics`` command).
    """
    from repro.campaign.digest import CODE_VERSION

    by_key = {record["key"]: record for record in result.records}
    quarantined = {item["key"]: item for item in result.quarantined}
    trials: List[Dict[str, Any]] = []
    metric_snapshots: List[Dict[str, Any]] = []
    for task in spec.trial_tasks():  # task order => deterministic merge
        key = task["key"]
        record = by_key.get(key)
        if record is not None:
            payload = record.get("payload", {})
            trials.append(
                {
                    "seed": task["seed"],
                    "preset": task["preset"],
                    "status": "ok",
                    "elapsed": record.get("elapsed", 0.0),
                    "attempts": record.get("attempts", 1),
                }
            )
            metric_snapshots.append(payload.get("metrics") or {})
        elif key in quarantined:
            item = quarantined[key]
            trials.append(
                {
                    "seed": task["seed"],
                    "preset": task["preset"],
                    "status": item.get("status", "failed"),
                    "elapsed": 0.0,
                    "attempts": item.get("attempts", 0),
                }
            )
        else:
            trials.append(
                {
                    "seed": task["seed"],
                    "preset": task["preset"],
                    "status": "missing",
                    "elapsed": 0.0,
                    "attempts": 0,
                }
            )
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "campaign_id": spec.campaign_id(),
        "experiment_id": spec.experiment_id.upper(),
        "code_version": CODE_VERSION,
        "cancelled": cancelled,
        "generated_unix": time.time(),
        "spec": {
            "seeds": len(spec.seeds),
            "seed_range": [min(spec.seeds), max(spec.seeds)],
            "presets": list(spec.presets),
            "full": spec.full,
            "jobs": spec.jobs,
            "timeout": spec.timeout,
            "max_attempts": spec.max_attempts,
        },
        "totals": {
            "trials": result.total,
            "ran": result.ran,
            "cached": result.cached,
            "quarantined": len(result.quarantined),
            "cache_hit_ratio": result.cache_hit_ratio,
            "wall_seconds": wall_seconds,
        },
        "trials": trials,
        "metrics": merge_snapshots(metric_snapshots),
        "supervisor": supervisor_snapshot or {},
    }
    if batch is not None:
        # Dispatch provenance: how trials actually executed (batched vs
        # ejected to the scalar engine).  Deliberately OUTSIDE the
        # fingerprint view — batching is bit-exact, so a batched and a
        # scalar run of the same campaign must fingerprint identically.
        manifest["batch"] = batch
    if store_health is not None:
        # Store health (record/shard counts, truncation, index counters).
        # Derived from record counts only — no byte sizes or wall clock —
        # so it stays identical between serial and --jobs N runs; still
        # outside the fingerprint view because cache state (hits, reads)
        # legitimately differs between a cold and a resumed run.
        manifest["store"] = store_health
    if planner is not None:
        # Adaptive-dispatch provenance (seeds saved, stopping round and
        # reason per preset, contested set, solver envelopes).  OUTSIDE
        # the fingerprint view: the fingerprint covers the *consumed*
        # trials and their results — which an adaptive and a fixed run
        # over the same consumed seed set agree on — while the planner
        # section explains why dispatch stopped where it did.
        manifest["planner"] = planner
    return manifest


def write_manifest(directory: str, manifest: Dict[str, Any]) -> str:
    """Write ``manifest.json`` into ``directory``; returns the path.

    Crash-atomic (tmp-file + fsync + rename): a campaign killed mid-write
    leaves either the previous manifest or the new one, never a torn
    JSON document — the service's crash recovery reads manifests from
    resumed runs and must be able to trust them.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, sort_keys=True, indent=1)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def manifest_fingerprint(manifest: Dict[str, Any]) -> str:
    """Canonical JSON of the manifest's deterministic sections.

    Two runs of the same campaign must produce identical fingerprints no
    matter which executor backend ran the trials, how many workers were
    used, or whether results came from the content-addressed store — so
    everything wall-clock-dependent (elapsed, attempts, supervisor
    metrics, ran/cached split, timestamps) is excluded, and everything
    result-bearing (merged metrics, per-trial status, survival matrix) is
    kept.  The service uses the fingerprint to prove a cache-served job
    equals the job that originally computed it; the backend-equivalence
    golden test byte-compares it across backends.
    """
    view: Dict[str, Any] = {
        "schema": manifest.get("schema"),
        "campaign_id": manifest.get("campaign_id"),
        "experiment_id": manifest.get("experiment_id"),
        "code_version": manifest.get("code_version"),
        "cancelled": bool(manifest.get("cancelled", False)),
        "trials": [
            {
                "seed": trial.get("seed"),
                "preset": trial.get("preset"),
                "status": trial.get("status"),
            }
            for trial in manifest.get("trials", [])
        ],
        "totals": {
            "trials": manifest.get("totals", {}).get("trials"),
            "quarantined": manifest.get("totals", {}).get("quarantined"),
        },
        "metrics": manifest.get("metrics", {}),
    }
    if "survival" in manifest:
        view["survival"] = manifest["survival"]
    return json.dumps(view, sort_keys=True, separators=(",", ":"))


def find_manifest(path: str) -> str:
    """Resolve a manifest path from a file, campaign dir, or cache root.

    Accepts the manifest file itself, the campaign directory containing
    it, or a cache root holding campaign directories — the most recently
    written manifest wins in the last case.
    """
    if os.path.isfile(path):
        return path
    direct = os.path.join(path, MANIFEST_NAME)
    if os.path.isfile(direct):
        return direct
    candidates = []
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            nested = os.path.join(path, name, MANIFEST_NAME)
            if os.path.isfile(nested):
                candidates.append(nested)
    if not candidates:
        raise ObservabilityError(
            f"no {MANIFEST_NAME} under {path!r} (run a campaign first)"
        )
    return max(candidates, key=os.path.getmtime)


def load_manifest(path: str) -> Dict[str, Any]:
    with open(find_manifest(path), "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if not isinstance(manifest, dict) or "schema" not in manifest:
        raise ObservabilityError(f"{path!r} is not a campaign manifest")
    return manifest


# ---------------------------------------------------------------------------
# Rollup rendering (``python -m repro metrics``)
# ---------------------------------------------------------------------------

_BAR_WIDTH = 32


def _fmt_bound(index_key: str) -> str:
    bound = bucket_bound(int(index_key))
    return "inf" if bound is None else f"{bound:.3g}"


def render_histogram(name: str, histogram: Dict[str, Any]) -> List[str]:
    """ASCII rendering of one snapshot histogram."""
    count = histogram.get("count", 0)
    lines = [
        f"{name}: n={count} sum={histogram.get('sum', 0.0):.6g} "
        f"min={histogram.get('min')} max={histogram.get('max')}"
    ]
    buckets = histogram.get("buckets", {})
    if not buckets or not count:
        return lines
    top = max(buckets.values())
    for key in sorted(buckets, key=int):
        n = buckets[key]
        bar = "#" * max(1, round(n / top * _BAR_WIDTH))
        lines.append(f"  <= {_fmt_bound(key):>8}  {n:>8}  {bar}")
    return lines


def histogram_quantiles(
    histogram: Dict[str, Any], quantiles: Sequence[float] = (0.5, 0.9, 0.99)
) -> Dict[str, Optional[float]]:
    """Bucket-resolution quantile estimates for one snapshot histogram.

    The estimate for quantile ``q`` is the upper bound of the first bucket
    whose cumulative count reaches ``q * count`` (the overflow bucket
    reports the observed maximum).  Resolution is the shared log-bucket
    table — coarse but fully deterministic, so dashboards rendered from a
    serial and a ``--jobs N`` manifest agree byte for byte.
    """
    count = int(histogram.get("count") or 0)
    out: Dict[str, Optional[float]] = {}
    buckets = histogram.get("buckets", {})
    indices = sorted(buckets, key=int)
    for q in quantiles:
        label = f"p{q * 100:g}".replace(".", "_")
        if not count or not indices:
            out[label] = None
            continue
        rank = max(1, math.ceil(q * count))
        cumulative = 0
        value: Optional[float] = None
        for index_key in indices:
            cumulative += int(buckets[index_key])
            if cumulative >= rank:
                bound = bucket_bound(int(index_key))
                value = bound if bound is not None else histogram.get("max")
                break
        out[label] = value
    return out


def manifest_rollup(
    manifest: Dict[str, Any], top: Optional[int] = None
) -> Dict[str, Any]:
    """Machine-readable rollup of one manifest — the single aggregation
    path shared by ``repro metrics --format json`` and the dashboard.

    Every histogram gains ``mean``/``p50``/``p90``/``p99`` estimates.
    ``top`` keeps only the N largest counters (by value) and histograms
    (by count); gauges are never trimmed (there are few).  The result is
    JSON-safe and renders deterministically under ``sort_keys=True``.
    """
    metrics = manifest.get("metrics", {})
    counters = dict(metrics.get("counters", {}))
    histograms = {}
    for name, histogram in metrics.get("histograms", {}).items():
        entry = dict(histogram)
        count = int(histogram.get("count") or 0)
        entry["mean"] = (
            float(histogram.get("sum", 0.0)) / count if count else None
        )
        entry.update(histogram_quantiles(histogram))
        histograms[name] = entry
    if top is not None and top >= 0:
        keep = sorted(counters, key=lambda n: (-counters[n], n))[:top]
        counters = {name: counters[name] for name in keep}
        keep = sorted(
            histograms, key=lambda n: (-(histograms[n].get("count") or 0), n)
        )[:top]
        histograms = {name: histograms[name] for name in keep}
    rollup: Dict[str, Any] = {
        "schema": manifest.get("schema"),
        "campaign_id": manifest.get("campaign_id"),
        "experiment_id": manifest.get("experiment_id"),
        "code_version": manifest.get("code_version"),
        "cancelled": bool(manifest.get("cancelled", False)),
        "spec": manifest.get("spec", {}),
        "totals": manifest.get("totals", {}),
        "counters": counters,
        "gauges": dict(metrics.get("gauges", {})),
        "histograms": histograms,
        "trial_status": _status_counts(manifest),
    }
    for section in ("survival", "store", "batch", "planner"):
        if section in manifest:
            rollup[section] = manifest[section]
    return rollup


def _status_counts(manifest: Dict[str, Any]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for trial in manifest.get("trials", []):
        status = str(trial.get("status", "missing"))
        counts[status] = counts.get(status, 0) + 1
    return dict(sorted(counts.items()))


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Human rollup of one manifest (the ``repro metrics`` output)."""
    spec = manifest.get("spec", {})
    totals = manifest.get("totals", {})
    lines = [
        f"# campaign {manifest.get('experiment_id')} — "
        f"{manifest.get('campaign_id')}",
        f"code={manifest.get('code_version')} schema={manifest.get('schema')}",
        f"grid: {spec.get('seeds')} seeds x {len(spec.get('presets', []))} "
        f"preset(s), scale={'full' if spec.get('full') else 'fast'}, "
        f"jobs={spec.get('jobs')}",
        f"trials: {totals.get('trials')} total, {totals.get('ran')} ran, "
        f"{totals.get('cached')} cached, {totals.get('quarantined')} "
        f"quarantined, cache-hit {100.0 * totals.get('cache_hit_ratio', 0.0):.1f}%, "
        f"wall {totals.get('wall_seconds', 0.0):.2f}s",
        "",
    ]
    if manifest.get("cancelled"):
        lines.insert(-1, "!! CANCELLED — partial results only")
    batch = manifest.get("batch")
    if batch:
        ejections = batch.get("ejections", [])
        lines.insert(
            -1,
            f"batch dispatch: {batch.get('groups', 0)} group(s), "
            f"{batch.get('batched', 0)} trials batched, "
            f"{batch.get('scalar_fallback', 0)} scalar fallback"
            + (f" ({len(ejections)} ejection(s))" if ejections else ""),
        )
        under = batch.get("underperformance")
        if under:
            lines.insert(
                -1,
                f"  !! batch underperformed its scalar estimate: dispatch "
                f"{under.get('dispatch_seconds')}s vs members "
                f"{under.get('member_seconds')}s "
                f"({under.get('overhead_ratio')}x)",
            )
    planner = manifest.get("planner")
    if planner:
        lines.insert(
            -1,
            f"adaptive planner: {planner.get('consumed_trials')}/"
            f"{planner.get('budget_trials')} trials in "
            f"{planner.get('rounds')} round(s), "
            f"{planner.get('seeds_saved')} saved "
            f"(target width {planner.get('ci_width')} on "
            f"{planner.get('quantity')!r})",
        )
    failed = [t for t in manifest.get("trials", []) if t["status"] not in ("ok",)]
    if failed:
        lines.append("non-ok trials:")
        for trial in failed:
            lines.append(
                f"  - seed={trial['seed']} preset={trial['preset']} "
                f"status={trial['status']} attempts={trial['attempts']}"
            )
        lines.append("")
    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("merged counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name.ljust(width)}  {value}")
        lines.append("")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("merged gauges (max across trials):")
        width = max(len(name) for name in gauges)
        for name, gauge in gauges.items():
            lines.append(
                f"  {name.ljust(width)}  value={gauge['value']:.6g} "
                f"peak={gauge['peak']:.6g}"
            )
        lines.append("")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("merged histograms:")
        for name, histogram in histograms.items():
            lines.extend("  " + line for line in render_histogram(name, histogram))
        lines.append("")
    survival = manifest.get("survival")
    if survival:
        s_totals = survival.get("totals", {})
        lines.append(
            f"survival (plan {survival.get('plan')!r}, "
            f"horizon {survival.get('horizon')}s): "
            f"{s_totals.get('injected', 0)} injected, "
            f"{s_totals.get('detected', 0)} detected, "
            f"{s_totals.get('degraded', 0)} degraded, "
            f"{s_totals.get('missed', 0)} missed"
        )
        classes = survival.get("classes", {})
        if classes:
            width = max(len(name) for name in classes)
            for name in sorted(classes):
                row = classes[name]
                lines.append(
                    f"  {name.ljust(width)}  injected={row.get('injected', 0)} "
                    f"detected={row.get('detected', 0)} "
                    f"degraded={row.get('degraded', 0)} "
                    f"missed={row.get('missed', 0)}"
                )
        lines.append("")
    store = manifest.get("store")
    if store:
        index = store.get("index", {})
        lines.append(
            f"store health: {store.get('records', 0)} live records in "
            f"{len(store.get('shards', {}))} shard(s), "
            f"{store.get('quarantined', 0)} quarantined, "
            f"{store.get('truncated_records', 0)} truncated, "
            f"{store.get('pinned', 0)} pinned"
        )
        lines.append(
            f"  index: {index.get('record_reads', 0)} keyed reads, "
            f"{index.get('full_scans', 0)} full scan(s), "
            f"{index.get('tail_scans', 0)} tail scan(s), "
            f"{index.get('rebuilds', 0)} rebuild(s)"
            + (" [migrated pre-index store]" if index.get("lazy_reindexed") else "")
        )
        lines.append("")
    supervisor = manifest.get("supervisor", {})
    sup_hists = supervisor.get("histograms", {})
    if sup_hists:
        lines.append("supervisor (wall-clock, not reproducible):")
        for name, histogram in sup_hists.items():
            lines.extend("  " + line for line in render_histogram(name, histogram))
    return "\n".join(lines).rstrip() + "\n"
