"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible experiments (id and title).
``experiment <id>``
    Run one experiment and print its table (``--full`` for paper-scale).
``campaign <id>``
    Monte-Carlo fan-out: many seeds across a worker pool, cached results.
``report``
    Run the whole suite and print/write the assembled report
    (``--full`` runs are fanned out across the campaign worker pool).
``demo``
    A 60-second narrated run: SATIN catching a GETTID hijack.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.report import (
    EXPERIMENT_SPECS,
    generate_report,
    run_experiment,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENT_SPECS)
    for spec in EXPERIMENT_SPECS:
        print(f"{spec.experiment_id.ljust(width)}  {spec.title}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        result = run_experiment(args.id, seed=args.seed, full=args.full)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    print(result.rendered)
    if args.verbose and result.comparisons:
        print()
        for row in result.comparisons:
            print(f"paper vs measured — {row['quantity']}: "
                  f"{row['paper']} vs {row['measured']}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, run_campaign
    from repro.errors import ReproError

    from repro.experiments.report import spec_by_id

    seeds = [args.seed_base + i for i in range(args.seeds)]
    try:
        spec_by_id(args.id)  # fail fast on unknown experiment ids
        spec = CampaignSpec(
            experiment_id=args.id,
            seeds=seeds,
            full=args.full,
            presets=tuple(args.preset) if args.preset else ("juno_r1",),
            jobs=args.jobs,
            timeout=args.timeout if args.timeout > 0 else None,
            max_attempts=args.retries + 1,
            cache_dir=args.cache_dir,
            resume=args.resume,
        )
        result = run_campaign(spec, progress=not args.quiet)
    except (ReproError, KeyError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.rendered + "\n")
        print(f"campaign summary written to {args.output}", file=sys.stderr)
    else:
        print(result.rendered)
    return 0 if result.records else 3


def _cmd_report(args: argparse.Namespace) -> int:
    jobs = args.jobs
    if jobs is None and args.full:
        # Paper-scale suites go through the campaign worker pool.
        jobs = os.cpu_count() or 1
    text = generate_report(
        seed=args.seed,
        full=args.full,
        only=args.only if args.only else None,
        progress=lambda msg: print(msg, file=sys.stderr),
        jobs=jobs,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import boot_rich_os, build_machine, install_satin, juno_r1_config
    from repro.hw.world import World
    from repro.kernel.syscalls import NR_GETTID

    machine = build_machine(juno_r1_config(seed=args.seed))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    print(f"SATIN on a simulated Juno r1: {len(satin.areas)} areas, "
          f"tp={satin.policy.tp:g}s")
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    print("rootkit hijacked GETTID (area 14); waiting for the random walk...")
    while not satin.alarms.alarms:
        machine.run_for(satin.policy.tp)
    alarm = satin.alarms.alarms[0]
    print(f"t={machine.now:.1f}s  {alarm}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SATIN (DSN 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("id", help="experiment id (e.g. E9, A1)")
    experiment.add_argument("--seed", type=int, default=2019)
    experiment.add_argument("--full", action="store_true",
                            help="paper-scale sizes")
    experiment.add_argument("-v", "--verbose", action="store_true",
                            help="also print paper-vs-measured rows")

    campaign = sub.add_parser(
        "campaign",
        help="Monte-Carlo campaign: one experiment, many seeds, worker pool",
    )
    campaign.add_argument("id", help="experiment id (e.g. E9, A1)")
    campaign.add_argument("--seeds", type=int, default=64, metavar="N",
                          help="number of seeds (default 64)")
    campaign.add_argument("--seed-base", type=int, default=0,
                          help="first seed; trials use base..base+N-1")
    campaign.add_argument("--jobs", type=int,
                          default=max(os.cpu_count() or 1, 1), metavar="N",
                          help="worker processes (0 = serial in-process)")
    campaign.add_argument("--full", action="store_true",
                          help="paper-scale trials")
    campaign.add_argument("--preset", action="append", metavar="NAME",
                          help="platform preset; repeat to form a grid "
                               "(default juno_r1)")
    campaign.add_argument("--resume", action="store_true",
                          help="serve completed trials from the result cache")
    campaign.add_argument("--timeout", type=float, default=600.0,
                          help="per-trial timeout in seconds (0 disables)")
    campaign.add_argument("--retries", type=int, default=1,
                          help="retries per failing trial before quarantine")
    campaign.add_argument("--cache-dir", default=".repro-cache",
                          help="result store root (default .repro-cache)")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress the stderr progress meter")
    campaign.add_argument("-o", "--output",
                          help="write the campaign summary to a file")

    report = sub.add_parser("report", help="run the whole suite")
    report.add_argument("--seed", type=int, default=2019)
    report.add_argument("--full", action="store_true")
    report.add_argument("--only", nargs="*", metavar="ID",
                        help="restrict to these experiment ids")
    report.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan experiments out across N worker processes "
                             "(default: CPU count when --full, else serial)")
    report.add_argument("-o", "--output", help="write the report to a file")

    demo = sub.add_parser("demo", help="narrated SATIN detection demo")
    demo.add_argument("--seed", type=int, default=42)

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "experiment": _cmd_experiment,
    "campaign": _cmd_campaign,
    "report": _cmd_report,
    "demo": _cmd_demo,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
