"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible experiments (id and title).
``experiment <id>``
    Run one experiment and print its table (``--full`` for paper-scale).
``report``
    Run the whole suite and print/write the assembled report.
``demo``
    A 60-second narrated run: SATIN catching a GETTID hijack.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.report import (
    EXPERIMENT_SPECS,
    generate_report,
    run_experiment,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENT_SPECS)
    for spec in EXPERIMENT_SPECS:
        print(f"{spec.experiment_id.ljust(width)}  {spec.title}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        result = run_experiment(args.id, seed=args.seed, full=args.full)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    print(result.rendered)
    if args.verbose and result.comparisons:
        print()
        for row in result.comparisons:
            print(f"paper vs measured — {row['quantity']}: "
                  f"{row['paper']} vs {row['measured']}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    text = generate_report(
        seed=args.seed,
        full=args.full,
        only=args.only if args.only else None,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import boot_rich_os, build_machine, install_satin, juno_r1_config
    from repro.hw.world import World
    from repro.kernel.syscalls import NR_GETTID

    machine = build_machine(juno_r1_config(seed=args.seed))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    print(f"SATIN on a simulated Juno r1: {len(satin.areas)} areas, "
          f"tp={satin.policy.tp:g}s")
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    print("rootkit hijacked GETTID (area 14); waiting for the random walk...")
    while not satin.alarms.alarms:
        machine.run_for(satin.policy.tp)
    alarm = satin.alarms.alarms[0]
    print(f"t={machine.now:.1f}s  {alarm}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SATIN (DSN 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("id", help="experiment id (e.g. E9, A1)")
    experiment.add_argument("--seed", type=int, default=2019)
    experiment.add_argument("--full", action="store_true",
                            help="paper-scale sizes")
    experiment.add_argument("-v", "--verbose", action="store_true",
                            help="also print paper-vs-measured rows")

    report = sub.add_parser("report", help="run the whole suite")
    report.add_argument("--seed", type=int, default=2019)
    report.add_argument("--full", action="store_true")
    report.add_argument("--only", nargs="*", metavar="ID",
                        help="restrict to these experiment ids")
    report.add_argument("-o", "--output", help="write the report to a file")

    demo = sub.add_parser("demo", help="narrated SATIN detection demo")
    demo.add_argument("--seed", type=int, default=42)

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "demo": _cmd_demo,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
