"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible experiments (id and title).
``experiment <id>``
    Run one experiment and print its table (``--full`` for paper-scale).
``campaign <id>``
    Monte-Carlo fan-out: many seeds across a worker pool, cached results.
``report``
    Run the whole suite and print/write the assembled report
    (``--full`` runs are fanned out across the campaign worker pool).
``chaos <scenario>``
    Fault-injection sweep: run a scenario under a fault plan across many
    seeds and print the survival/detection matrix (non-zero exit on any
    missed fault).
``trace <scenario>``
    Run a trace scenario and export Perfetto ``trace_event`` JSON
    (open in ui.perfetto.dev) and/or JSONL.
``metrics <campaign-dir>``
    Render the rollup of a campaign's ``manifest.json``.
``demo``
    A 60-second narrated run: SATIN catching a GETTID hijack.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.report import (
    EXPERIMENT_SPECS,
    generate_report,
    run_experiment,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENT_SPECS)
    for spec in EXPERIMENT_SPECS:
        print(f"{spec.experiment_id.ljust(width)}  {spec.title}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        result = run_experiment(args.id, seed=args.seed, full=args.full)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    print(result.rendered)
    if args.verbose and result.comparisons:
        print()
        for row in result.comparisons:
            print(f"paper vs measured — {row['quantity']}: "
                  f"{row['paper']} vs {row['measured']}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, run_campaign
    from repro.errors import ReproError

    from repro.experiments.report import spec_by_id

    seeds = [args.seed_base + i for i in range(args.seeds)]
    try:
        spec_by_id(args.id)  # fail fast on unknown experiment ids
        spec = CampaignSpec(
            experiment_id=args.id,
            seeds=seeds,
            full=args.full,
            presets=tuple(args.preset) if args.preset else ("juno_r1",),
            jobs=args.jobs,
            timeout=args.timeout if args.timeout > 0 else None,
            max_attempts=args.retries + 1,
            cache_dir=args.cache_dir,
            resume=args.resume,
        )
        if args.no_progress:
            progress = False
        elif args.quiet:
            progress = "quiet"
        else:
            progress = True
        result = run_campaign(spec, progress=progress)
    except (ReproError, KeyError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if result.manifest_path:
        print(f"manifest written to {result.manifest_path}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.rendered + "\n")
        print(f"campaign summary written to {args.output}", file=sys.stderr)
    else:
        print(result.rendered)
    return 0 if result.records else 3


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReproError
    from repro.faults.chaos import ChaosSpec, run_chaos

    seeds = [args.seed_base + i for i in range(args.seeds)]
    try:
        spec = ChaosSpec(
            scenario=args.scenario,
            seeds=seeds,
            plan_name=args.faults,
            fault_seed_base=args.fault_seed_base,
            preset=args.preset,
            duration=args.duration,
            jobs=args.jobs,
            timeout=args.timeout if args.timeout > 0 else None,
            max_attempts=args.retries + 1,
            cache_dir=args.cache_dir,
            resume=args.resume,
        )
        if args.no_progress:
            progress = False
        elif args.quiet:
            progress = "quiet"
        else:
            progress = True
        result = run_chaos(spec, progress=progress)
    except ReproError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if result.manifest_path:
        print(f"manifest written to {result.manifest_path}", file=sys.stderr)
    if args.matrix:
        with open(args.matrix, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "scenario": spec.scenario,
                    "plan": spec.plan.name,
                    "seeds": len(seeds),
                    "classes": result.survival,
                    "totals": result.totals,
                },
                handle, indent=1, sort_keys=True,
            )
            handle.write("\n")
        print(f"survival matrix written to {args.matrix}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.rendered + "\n")
        print(f"chaos summary written to {args.output}", file=sys.stderr)
    else:
        print(result.rendered)
    if not result.records:
        return 3
    return 4 if result.missed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    jobs = args.jobs
    if jobs is None and args.full:
        # Paper-scale suites go through the campaign worker pool.
        jobs = os.cpu_count() or 1
    text = generate_report(
        seed=args.seed,
        full=args.full,
        only=args.only if args.only else None,
        progress=lambda msg: print(msg, file=sys.stderr),
        jobs=jobs,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.scenarios import (
        build_scenario_stack,
        run_scenario,
        scenario_by_name,
        scenario_records,
    )
    from repro.obs.trace_export import (
        JsonlTraceWriter,
        machine_core_labels,
        write_perfetto,
    )

    if not args.out and not args.jsonl:
        print("trace: pass --out (Perfetto JSON) and/or --jsonl", file=sys.stderr)
        return 2
    try:
        scenario = scenario_by_name(args.scenario)
        stack = build_scenario_stack(scenario, seed=args.seed, preset=args.preset)
        jsonl_handle = None
        if args.jsonl:
            # Stream records as they happen (a crash leaves a readable prefix).
            jsonl_handle = open(args.jsonl, "w", encoding="utf-8")
            writer = JsonlTraceWriter(jsonl_handle)
            stack.machine.trace.add_listener(writer)
        try:
            run_scenario(stack, scenario, duration=args.duration, rounds=args.rounds)
        finally:
            if jsonl_handle is not None:
                jsonl_handle.close()
        records = scenario_records(stack)
        if args.out:
            trace = write_perfetto(
                records, args.out, machine_core_labels(stack.machine)
            )
            spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
            print(
                f"{args.out}: {len(trace['traceEvents'])} trace events "
                f"({spans} spans) over {stack.machine.now:.3f}s simulated — "
                f"open in ui.perfetto.dev",
                file=sys.stderr,
            )
        if args.jsonl:
            print(f"{args.jsonl}: {len(records)} records (JSONL)", file=sys.stderr)
    except ReproError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    counters = stack.machine.metrics.snapshot()["counters"]
    for name in sorted(counters):
        print(f"{name} = {counters[name]}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.manifest import load_manifest, render_manifest

    try:
        manifest = load_manifest(args.path)
    except (ReproError, OSError, ValueError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    print(render_manifest(manifest), end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import check_determinism, run_bench

    results = run_bench(progress=lambda msg: print(msg, file=sys.stderr))
    rendered = json.dumps(results, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"bench results written to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    engine = results["event_engine"]
    scans = results["scan_coalescing"]
    print(
        f"event engine: {engine['events_per_sec']:,} ev/s "
        f"({engine['speedup']}x vs seed-style reference); "
        f"fused scans: {scans['speedup']}x, timeline identical: "
        f"{scans['timeline_identical']}",
        file=sys.stderr,
    )
    if args.check:
        problems = check_determinism(results, args.check)
        if problems:
            print("deterministic regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"determinism block matches {args.check}", file=sys.stderr)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import boot_rich_os, build_machine, install_satin, juno_r1_config
    from repro.hw.world import World
    from repro.kernel.syscalls import NR_GETTID

    machine = build_machine(juno_r1_config(seed=args.seed))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    print(f"SATIN on a simulated Juno r1: {len(satin.areas)} areas, "
          f"tp={satin.policy.tp:g}s")
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    print("rootkit hijacked GETTID (area 14); waiting for the random walk...")
    while not satin.alarms.alarms:
        machine.run_for(satin.policy.tp)
    alarm = satin.alarms.alarms[0]
    print(f"t={machine.now:.1f}s  {alarm}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SATIN (DSN 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("id", help="experiment id (e.g. E9, A1)")
    experiment.add_argument("--seed", type=int, default=2019)
    experiment.add_argument("--full", action="store_true",
                            help="paper-scale sizes")
    experiment.add_argument("-v", "--verbose", action="store_true",
                            help="also print paper-vs-measured rows")

    campaign = sub.add_parser(
        "campaign",
        help="Monte-Carlo campaign: one experiment, many seeds, worker pool",
    )
    campaign.add_argument("id", help="experiment id (e.g. E9, A1)")
    campaign.add_argument("--seeds", type=int, default=64, metavar="N",
                          help="number of seeds (default 64)")
    campaign.add_argument("--seed-base", type=int, default=0,
                          help="first seed; trials use base..base+N-1")
    campaign.add_argument("--jobs", type=int,
                          default=max(os.cpu_count() or 1, 1), metavar="N",
                          help="worker processes (0 = serial in-process)")
    campaign.add_argument("--full", action="store_true",
                          help="paper-scale trials")
    campaign.add_argument("--preset", action="append", metavar="NAME",
                          help="platform preset; repeat to form a grid "
                               "(default juno_r1)")
    campaign.add_argument("--resume", action="store_true",
                          help="serve completed trials from the result cache")
    campaign.add_argument("--timeout", type=float, default=600.0,
                          help="per-trial timeout in seconds (0 disables)")
    campaign.add_argument("--retries", type=int, default=1,
                          help="retries per failing trial before quarantine")
    campaign.add_argument("--cache-dir", default=".repro-cache",
                          help="result store root (default .repro-cache)")
    campaign.add_argument("--quiet", action="store_true",
                          help="progress meter prints only the final tally")
    campaign.add_argument("--no-progress", action="store_true",
                          help="suppress the stderr progress meter entirely")
    campaign.add_argument("-o", "--output",
                          help="write the campaign summary to a file")

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: survival/detection matrix across seeds",
    )
    chaos.add_argument("scenario",
                       help="trace scenario to stress (figure4, baseline)")
    chaos.add_argument("--faults", default="smoke", metavar="PLAN",
                       help="fault plan name (default smoke; see "
                            "repro.faults.plan)")
    chaos.add_argument("--seeds", type=int, default=8, metavar="N",
                       help="number of machine seeds (default 8)")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first machine seed; trials use base..base+N-1")
    chaos.add_argument("--fault-seed-base", type=int, default=0,
                       help="offset added to each machine seed to derive its "
                            "fault seed (default 0)")
    chaos.add_argument("--preset", default="juno_r1",
                       help="platform preset (default juno_r1)")
    chaos.add_argument("--duration", type=float, default=None, metavar="S",
                       help="injection horizon in simulated seconds "
                            "(default: the plan's duration)")
    chaos.add_argument("--jobs", type=int,
                       default=max(os.cpu_count() or 1, 1), metavar="N",
                       help="worker processes (0 = serial in-process)")
    chaos.add_argument("--resume", action="store_true",
                       help="serve completed trials from the result cache")
    chaos.add_argument("--timeout", type=float, default=600.0,
                       help="per-trial timeout in seconds (0 disables)")
    chaos.add_argument("--retries", type=int, default=1,
                       help="retries per failing trial before quarantine")
    chaos.add_argument("--cache-dir", default=".repro-cache",
                       help="result store root (default .repro-cache)")
    chaos.add_argument("--quiet", action="store_true",
                       help="progress meter prints only the final tally")
    chaos.add_argument("--no-progress", action="store_true",
                       help="suppress the stderr progress meter entirely")
    chaos.add_argument("--matrix", metavar="FILE",
                       help="write the survival matrix as JSON (CI artifact)")
    chaos.add_argument("-o", "--output",
                       help="write the chaos summary to a file")

    report = sub.add_parser("report", help="run the whole suite")
    report.add_argument("--seed", type=int, default=2019)
    report.add_argument("--full", action="store_true")
    report.add_argument("--only", nargs="*", metavar="ID",
                        help="restrict to these experiment ids")
    report.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan experiments out across N worker processes "
                             "(default: CPU count when --full, else serial)")
    report.add_argument("-o", "--output", help="write the report to a file")

    trace = sub.add_parser(
        "trace",
        help="run a scenario and export Perfetto/JSONL traces",
    )
    trace.add_argument("scenario",
                       help="scenario name (figure4, baseline, idle)")
    trace.add_argument("--seed", type=int, default=2019)
    trace.add_argument("--preset", default="juno_r1",
                       help="platform preset (default juno_r1)")
    trace.add_argument("--duration", type=float, default=None, metavar="S",
                       help="simulated seconds to run (default: run until "
                            "--rounds introspection rounds)")
    trace.add_argument("--rounds", type=int, default=4,
                       help="introspection rounds to capture when no "
                            "--duration is given (default 4)")
    trace.add_argument("-o", "--out", metavar="FILE",
                       help="write Chrome/Perfetto trace_event JSON here")
    trace.add_argument("--jsonl", metavar="FILE",
                       help="stream raw trace records to this JSONL file")

    metrics = sub.add_parser(
        "metrics",
        help="render a campaign manifest rollup",
    )
    metrics.add_argument("path",
                         help="manifest.json, a campaign directory, or a "
                              "cache root (most recent campaign wins)")

    bench = sub.add_parser(
        "bench",
        help="run the performance benchmark suite (BENCH_*.json trajectory)",
    )
    bench.add_argument("-o", "--out", metavar="FILE",
                       help="write the full bench JSON here (e.g. BENCH_4.json)")
    bench.add_argument("--check", metavar="FILE",
                       help="compare the deterministic block against a pinned "
                            "JSON file; non-zero exit on drift")

    demo = sub.add_parser("demo", help="narrated SATIN detection demo")
    demo.add_argument("--seed", type=int, default=42)

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "experiment": _cmd_experiment,
    "campaign": _cmd_campaign,
    "chaos": _cmd_chaos,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "bench": _cmd_bench,
    "demo": _cmd_demo,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
