"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible experiments (id and title).
``experiment <id>``
    Run one experiment and print its table (``--full`` for paper-scale).
``campaign <id>``
    Monte-Carlo fan-out: many seeds across a worker pool, cached results.
``report``
    Run the whole suite and print/write the assembled report
    (``--full`` runs are fanned out across the campaign worker pool).
``chaos <scenario>``
    Fault-injection sweep: run a scenario under a fault plan across many
    seeds and print the survival/detection matrix (non-zero exit on any
    missed fault).
``trace <scenario>``
    Run a trace scenario and export Perfetto ``trace_event`` JSON
    (open in ui.perfetto.dev) and/or JSONL.
``metrics <campaign-dir>``
    Render the rollup of a campaign's ``manifest.json`` (``--format
    json`` for the machine-readable rollup, ``--top N`` to trim).
``dash <campaign-dir>``
    Render a zero-dependency static HTML dashboard (survival heatmap,
    Gantt lanes from a Perfetto trace, latency percentiles, store
    health); ``--follow`` tails a still-running campaign.
``store gc|pin <campaign-dir>``
    Compact the result store (drop superseded/torn/resolved lines) or
    pin golden keys gc must preserve.
``serve``
    Long-running HTTP/JSON job service (submit campaigns over the wire,
    answered from the shared result cache on resubmission).
``worker --queue DIR``
    Drain trial tasks from a file-system queue (``--backend queue`` runs
    and multi-host fan-out).
``submit`` / ``status`` / ``fetch`` / ``cancel``
    Thin clients for a running ``repro serve``.
``demo``
    A 60-second narrated run: SATIN catching a GETTID hijack.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.report import (
    EXPERIMENT_SPECS,
    generate_report,
    run_experiment,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(spec.experiment_id) for spec in EXPERIMENT_SPECS)
    for spec in EXPERIMENT_SPECS:
        print(f"{spec.experiment_id.ljust(width)}  {spec.title}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        result = run_experiment(args.id, seed=args.seed, full=args.full)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    print(result.rendered)
    if args.verbose and result.comparisons:
        print()
        for row in result.comparisons:
            print(f"paper vs measured — {row['quantity']}: "
                  f"{row['paper']} vs {row['measured']}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, run_campaign
    from repro.errors import ReproError

    from repro.experiments.report import spec_by_id

    seeds = [args.seed_base + i for i in range(args.seeds)]
    try:
        spec_by_id(args.id)  # fail fast on unknown experiment ids
        spec = CampaignSpec(
            experiment_id=args.id,
            seeds=seeds,
            full=args.full,
            presets=tuple(args.preset) if args.preset else ("juno_r1",),
            jobs=args.jobs,
            timeout=args.timeout if args.timeout > 0 else None,
            max_attempts=args.retries + 1,
            cache_dir=args.cache_dir,
            resume=args.resume,
            backend=args.backend,
            queue_dir=args.queue_dir,
            queue_workers=args.queue_workers,
            batch=args.batch,
            batch_size=args.batch_size,
            adaptive=args.adaptive,
            ci_width=args.ci_width,
            ci_quantity=args.ci_quantity,
            min_seeds=args.min_seeds,
            round_size=args.round_size,
        )
        if args.no_progress:
            progress = False
        elif args.quiet:
            progress = "quiet"
        else:
            progress = True
        result = run_campaign(spec, progress=progress)
    except (ReproError, KeyError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if result.manifest_path:
        print(f"manifest written to {result.manifest_path}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.rendered + "\n")
        print(f"campaign summary written to {args.output}", file=sys.stderr)
    else:
        print(result.rendered)
    if result.cancelled:
        print(
            f"campaign cancelled — {len(result.records)}/{result.total} trials "
            "completed; rerun with --resume to continue",
            file=sys.stderr,
        )
        return 130
    return 0 if result.records else 3


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.planning.search import render_plan, search_plan
    from repro.errors import ReproError

    try:
        report = search_plan(
            presets=tuple(args.preset) if args.preset else ("juno_r1",),
            tgoals=tuple(args.tgoal) if args.tgoal else (76.0, 152.0),
            deviations=(
                tuple(args.deviation) if args.deviation else (0.5, 1.0)
            ),
            partitions=(
                tuple(args.partition) if args.partition
                else ("sections", "packed")
            ),
            overhead_budget=args.budget,
            tie_break_seeds=args.tie_break_seeds,
            tie_break_top=args.tie_break_top,
            seed_base=args.seed_base,
            cache_dir=args.cache_dir,
        )
    except ReproError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    print(render_plan(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"plan report written to {args.json}", file=sys.stderr)
    return 0 if report["winner"] is not None else 3


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReproError
    from repro.faults.chaos import ChaosSpec, run_chaos

    seeds = [args.seed_base + i for i in range(args.seeds)]
    try:
        spec = ChaosSpec(
            scenario=args.scenario,
            seeds=seeds,
            plan_name=args.faults,
            fault_seed_base=args.fault_seed_base,
            preset=args.preset,
            duration=args.duration,
            jobs=args.jobs,
            timeout=args.timeout if args.timeout > 0 else None,
            max_attempts=args.retries + 1,
            cache_dir=args.cache_dir,
            resume=args.resume,
            backend=args.backend,
            queue_dir=args.queue_dir,
            queue_workers=args.queue_workers,
        )
        if args.no_progress:
            progress = False
        elif args.quiet:
            progress = "quiet"
        else:
            progress = True
        result = run_chaos(spec, progress=progress)
    except ReproError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if result.manifest_path:
        print(f"manifest written to {result.manifest_path}", file=sys.stderr)
    if args.matrix:
        with open(args.matrix, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "scenario": spec.scenario,
                    "plan": spec.plan.name,
                    "seeds": len(seeds),
                    "classes": result.survival,
                    "totals": result.totals,
                },
                handle, indent=1, sort_keys=True,
            )
            handle.write("\n")
        print(f"survival matrix written to {args.matrix}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.rendered + "\n")
        print(f"chaos summary written to {args.output}", file=sys.stderr)
    else:
        print(result.rendered)
    if result.cancelled:
        print(
            f"chaos sweep cancelled — {len(result.records)}/{result.total} "
            "trials completed; rerun with --resume to continue",
            file=sys.stderr,
        )
        return 130
    if not result.records:
        return 3
    return 4 if result.missed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    jobs = args.jobs
    if jobs is None and args.full:
        # Paper-scale suites go through the campaign worker pool.
        jobs = os.cpu_count() or 1
    text = generate_report(
        seed=args.seed,
        full=args.full,
        only=args.only if args.only else None,
        progress=lambda msg: print(msg, file=sys.stderr),
        jobs=jobs,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.scenarios import (
        build_scenario_stack,
        run_scenario,
        scenario_by_name,
        scenario_records,
    )
    from repro.obs.trace_export import (
        JsonlTraceWriter,
        machine_core_labels,
        write_perfetto,
    )

    if not args.out and not args.jsonl:
        print("trace: pass --out (Perfetto JSON) and/or --jsonl", file=sys.stderr)
        return 2
    try:
        scenario = scenario_by_name(args.scenario)
        stack = build_scenario_stack(scenario, seed=args.seed, preset=args.preset)
        jsonl_handle = None
        if args.jsonl:
            # Stream records as they happen (a crash leaves a readable prefix).
            jsonl_handle = open(args.jsonl, "w", encoding="utf-8")
            writer = JsonlTraceWriter(jsonl_handle)
            stack.machine.trace.add_listener(writer)
        try:
            run_scenario(stack, scenario, duration=args.duration, rounds=args.rounds)
        finally:
            if jsonl_handle is not None:
                jsonl_handle.close()
        records = scenario_records(stack)
        if args.out:
            trace = write_perfetto(
                records, args.out, machine_core_labels(stack.machine)
            )
            spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
            print(
                f"{args.out}: {len(trace['traceEvents'])} trace events "
                f"({spans} spans) over {stack.machine.now:.3f}s simulated — "
                f"open in ui.perfetto.dev",
                file=sys.stderr,
            )
        if args.jsonl:
            print(f"{args.jsonl}: {len(records)} records (JSONL)", file=sys.stderr)
    except ReproError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    counters = stack.machine.metrics.snapshot()["counters"]
    for name in sorted(counters):
        print(f"{name} = {counters[name]}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReproError
    from repro.obs.manifest import (
        load_manifest,
        manifest_rollup,
        render_manifest,
    )

    try:
        manifest = load_manifest(args.path)
    except (ReproError, OSError, ValueError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if args.format == "json":
        rollup = manifest_rollup(manifest, top=args.top)
        print(json.dumps(rollup, indent=1, sort_keys=True))
        return 0
    if args.top is not None:
        # table mode renders the same trimmed view the JSON path would
        trimmed = manifest_rollup(manifest, top=args.top)
        manifest = dict(manifest)
        manifest["metrics"] = {
            "counters": trimmed["counters"],
            "gauges": trimmed["gauges"],
            "histograms": {
                name: {
                    key: value
                    for key, value in histogram.items()
                    if key not in ("mean", "p50", "p90", "p99")
                }
                for name, histogram in trimmed["histograms"].items()
            },
        }
    print(render_manifest(manifest), end="")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.dashboard import (
        build_dashboard_data,
        dashboard_json,
        follow_campaign,
        render_dashboard_html,
    )
    from repro.obs.dashboard.data import load_trace_file

    try:
        trace = load_trace_file(args.trace) if args.trace else None
    except ReproError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if args.follow:
        return follow_campaign(
            args.path,
            out_html=args.out,
            out_json=args.json,
            trace=trace,
            top=args.top,
            interval=args.interval,
            max_rounds=args.max_rounds if args.max_rounds > 0 else None,
            stream=sys.stderr,
        )
    try:
        data = build_dashboard_data(args.path, trace=trace, top=args.top)
    except (ReproError, OSError, ValueError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    from repro.obs.dashboard.follow import _write_atomic

    _write_atomic(args.out, render_dashboard_html(data))
    print(f"dashboard written to {args.out}", file=sys.stderr)
    if args.json:
        _write_atomic(args.json, dashboard_json(data))
        print(f"dashboard data written to {args.json}", file=sys.stderr)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from repro.campaign.store import ResultStore, campaign_dirs

    def open_store(path: str) -> ResultStore:
        root, campaign_id = os.path.split(os.path.abspath(path.rstrip(os.sep)))
        return ResultStore(root, campaign_id)

    if args.action == "pin":
        if not args.key:
            print("store pin: pass --key KEY (repeatable)", file=sys.stderr)
            return 2
        store = open_store(args.path)
        for key in args.key:
            store.pin(key)
        print(
            f"pinned {len(args.key)} key(s); {len(store.pinned_keys())} "
            f"pinned in total",
            file=sys.stderr,
        )
        return 0

    # gc: a campaign dir compacts one store, a cache root compacts all
    if not os.path.isdir(args.path):
        print(f"no such directory {args.path!r}", file=sys.stderr)
        return 2
    children = os.listdir(args.path)
    is_store = (
        any(n.startswith("shard-") and n.endswith(".jsonl") for n in children)
        or "quarantine.jsonl" in children
        or "manifest.json" in children
    )
    targets = [args.path] if is_store else campaign_dirs(args.path)
    if not targets:
        print(f"no campaign stores under {args.path!r}", file=sys.stderr)
        return 2
    reports = {}
    for target in targets:
        store = open_store(target)
        reports[store.campaign_id] = store.gc(dry_run=args.dry_run)
    for campaign_id in sorted(reports):
        report = reports[campaign_id]
        mode = "would drop" if args.dry_run else "dropped"
        print(
            f"{campaign_id}: kept {report['records_kept']} record(s), "
            f"{mode} {report['superseded_dropped']} superseded + "
            f"{report['truncated_dropped']} torn, quarantine "
            f"{report['quarantine_kept']} kept / "
            f"{report['quarantine_resolved']} resolved, "
            f"{report['pinned']} pinned, "
            f"{report['bytes_before']} -> {report['bytes_after']} bytes",
            file=sys.stderr,
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(reports, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"gc report written to {args.report}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.server import serve_forever

    try:
        return serve_forever(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            max_workers=args.workers,
            verbose=args.verbose,
            recover=args.recover,
            max_pending=args.max_pending,
            max_inflight_per_client=args.max_inflight,
        )
    except ServiceError as error:
        print(f"serve error: {error}", file=sys.stderr)
        return 2


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.queue import run_worker

    count = run_worker(
        args.queue,
        max_idle=args.max_idle if args.max_idle > 0 else None,
        max_tasks=1 if args.once else None,
        lease_ttl=args.lease_ttl,
    )
    print(f"worker exiting after {count} task(s)", file=sys.stderr)
    return 0


def _job_spec_from_args(args: argparse.Namespace) -> dict:
    spec = {
        "kind": "chaos" if args.chaos else "campaign",
        "target": args.target,
        "seeds": args.seeds,
        "seed_base": args.seed_base,
        "presets": list(args.preset) if args.preset else ["juno_r1"],
        "full": args.full,
        "backend": args.backend,
        "jobs": args.jobs,
        "max_attempts": args.retries + 1,
    }
    if args.timeout > 0:
        spec["timeout"] = args.timeout
    if args.queue_dir:
        spec["queue_dir"] = args.queue_dir
        spec["queue_workers"] = args.queue_workers
    if args.chaos:
        spec["plan"] = args.faults
        spec["fault_seed_base"] = args.fault_seed_base
        if args.duration is not None:
            spec["duration"] = args.duration
    if getattr(args, "adaptive", False):
        spec["adaptive"] = True
        spec["ci_width"] = args.ci_width
        if args.ci_quantity is not None:
            spec["ci_quantity"] = args.ci_quantity
        spec["min_seeds"] = args.min_seeds
        spec["round_size"] = args.round_size
    return spec


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError
    from repro.service import client

    try:
        state = client.submit_job(args.url, _job_spec_from_args(args))
        job_id = state["job_id"]
        note = " (duplicate of an active job)" if state.get("deduped") else ""
        print(f"submitted {job_id}{note}", file=sys.stderr)
        if not args.wait:
            print(job_id)
            return 0
        last_line = ""

        def on_progress(current: dict) -> None:
            nonlocal last_line
            line = client.format_state_line(current)
            if line != last_line:
                print(line, file=sys.stderr)
                last_line = line

        state = client.wait_for_job(
            args.url, job_id, timeout=args.wait_timeout, on_progress=on_progress
        )
        if state["state"] == "done":
            print(client.fetch_result(args.url, job_id), end="")
            return 0
        if args.json:
            print(json.dumps(state, indent=1, sort_keys=True))
        return 130 if state["state"] == "cancelled" else 1
    except ServiceError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError
    from repro.service import client

    try:
        if args.job_id:
            state = client.job_status(args.url, args.job_id)
            if args.json:
                print(json.dumps(state, indent=1, sort_keys=True))
            else:
                print(client.format_state_line(state))
        else:
            status, body = client.request(args.url, "/jobs")
            if status >= 400 or not isinstance(body, dict):
                print(f"job listing failed (HTTP {status})", file=sys.stderr)
                return 2
            jobs = body.get("jobs", [])
            if args.json:
                print(json.dumps(jobs, indent=1, sort_keys=True))
            else:
                for state in jobs:
                    print(client.format_state_line(state))
                if not jobs:
                    print("no jobs submitted yet", file=sys.stderr)
    except ServiceError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError
    from repro.service import client

    try:
        if args.result:
            text = client.fetch_result(args.url, args.job_id)
        elif args.matrix:
            text = json.dumps(
                client.fetch_matrix(args.url, args.job_id), indent=1, sort_keys=True
            ) + "\n"
        else:
            text = json.dumps(
                client.fetch_manifest(args.url, args.job_id),
                indent=1, sort_keys=True,
            ) + "\n"
    except ServiceError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"written to {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service import client

    try:
        state = client.cancel_job(args.url, args.job_id)
    except ServiceError as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    print(client.format_state_line(state))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import check_determinism, run_bench

    results = run_bench(
        progress=lambda msg: print(msg, file=sys.stderr),
        batch=args.batch,
        batch_seeds=args.batch_seeds,
        planner=args.planner,
        planner_seeds=args.planner_seeds,
        planner_ci_width=args.planner_ci_width,
    )
    rendered = json.dumps(results, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"bench results written to {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    engine = results["event_engine"]
    scans = results["scan_coalescing"]
    print(
        f"event engine: {engine['events_per_sec']:,} ev/s "
        f"({engine['speedup']}x vs seed-style reference); "
        f"fused scans: {scans['speedup']}x, timeline identical: "
        f"{scans['timeline_identical']}",
        file=sys.stderr,
    )
    if args.check:
        problems = check_determinism(results, args.check)
        if problems:
            print("deterministic regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"determinism block matches {args.check}", file=sys.stderr)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import boot_rich_os, build_machine, install_satin, juno_r1_config
    from repro.hw.world import World
    from repro.kernel.syscalls import NR_GETTID

    machine = build_machine(juno_r1_config(seed=args.seed))
    rich_os = boot_rich_os(machine)
    satin = install_satin(machine, rich_os)
    print(f"SATIN on a simulated Juno r1: {len(satin.areas)} areas, "
          f"tp={satin.policy.tp:g}s")
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD, World.NORMAL)
    print("rootkit hijacked GETTID (area 14); waiting for the random walk...")
    while not satin.alarms.alarms:
        machine.run_for(satin.policy.tp)
    alarm = satin.alarms.alarms[0]
    print(f"t={machine.now:.1f}s  {alarm}")
    return 0


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "inline", "thread", "fork", "queue"),
                        help="executor backend (default auto: fork pool, or "
                             "serial in-process when --jobs 0)")
    parser.add_argument("--queue-dir", metavar="DIR", default=None,
                        help="task queue directory for --backend queue")
    parser.add_argument("--queue-workers", type=int, default=0, metavar="N",
                        help="in-process drain threads for --backend queue "
                             "(0 = rely on external `repro worker` processes)")


def _add_client_options(parser: argparse.ArgumentParser) -> None:
    from repro.service.client import DEFAULT_URL

    parser.add_argument("--url", default=DEFAULT_URL,
                        help=f"service base URL (default {DEFAULT_URL})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SATIN (DSN 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("id", help="experiment id (e.g. E9, A1)")
    experiment.add_argument("--seed", type=int, default=2019)
    experiment.add_argument("--full", action="store_true",
                            help="paper-scale sizes")
    experiment.add_argument("-v", "--verbose", action="store_true",
                            help="also print paper-vs-measured rows")

    campaign = sub.add_parser(
        "campaign",
        help="Monte-Carlo campaign: one experiment, many seeds, worker pool",
    )
    campaign.add_argument("id", help="experiment id (e.g. E9, A1)")
    campaign.add_argument("--seeds", type=int, default=64, metavar="N",
                          help="number of seeds (default 64)")
    campaign.add_argument("--seed-base", type=int, default=0,
                          help="first seed; trials use base..base+N-1")
    campaign.add_argument("--jobs", type=int,
                          default=max(os.cpu_count() or 1, 1), metavar="N",
                          help="worker processes (0 = serial in-process)")
    campaign.add_argument("--full", action="store_true",
                          help="paper-scale trials")
    campaign.add_argument("--preset", action="append", metavar="NAME",
                          help="platform preset; repeat to form a grid "
                               "(default juno_r1)")
    campaign.add_argument("--resume", action="store_true",
                          help="serve completed trials from the result cache")
    campaign.add_argument("--timeout", type=float, default=600.0,
                          help="per-trial timeout in seconds (0 disables)")
    campaign.add_argument("--retries", type=int, default=1,
                          help="retries per failing trial before quarantine")
    campaign.add_argument("--cache-dir", default=".repro-cache",
                          help="result store root (default .repro-cache)")
    campaign.add_argument("--quiet", action="store_true",
                          help="progress meter prints only the final tally")
    campaign.add_argument("--no-progress", action="store_true",
                          help="suppress the stderr progress meter entirely")
    campaign.add_argument("-o", "--output",
                          help="write the campaign summary to a file")
    campaign.add_argument("--batch", action="store_true",
                          help="run same-config seeds as vectorized batch "
                               "groups (bit-exact; auto-off for fault plans; "
                               "kill switch REPRO_NO_BATCH)")
    campaign.add_argument("--batch-size", type=int, default=16, metavar="N",
                          help="max trials per batch group (default 16)")
    campaign.add_argument("--adaptive", action="store_true",
                          help="sequential-CI dispatch: stop consuming seeds "
                               "per preset once the target CI width is met "
                               "(needs --ci-width; --seeds is the budget)")
    campaign.add_argument("--ci-width", type=float, default=None, metavar="W",
                          help="target 95%% confidence-interval width for "
                               "--adaptive")
    campaign.add_argument("--ci-quantity", default=None, metavar="NAME",
                          help="comparison quantity the CI tracks (default: "
                               "first quantity with nonzero spread)")
    campaign.add_argument("--min-seeds", type=int, default=8, metavar="N",
                          help="seeds per preset before the first stopping "
                               "check (default 8)")
    campaign.add_argument("--round-size", type=int, default=4, metavar="N",
                          help="seeds added per preset per round; doubled "
                               "for solver-contested presets (default 4)")
    _add_backend_options(campaign)

    plan = sub.add_parser(
        "plan",
        help="search SATIN parameters against an overhead budget "
             "(solver bounds first, simulation only to break ties)",
    )
    plan.add_argument("--preset", action="append", metavar="NAME",
                      help="platform preset / core set; repeatable "
                           "(default juno_r1)")
    plan.add_argument("--tgoal", action="append", type=float, metavar="S",
                      help="full-pass period goal in seconds; repeatable "
                           "(default 76 152)")
    plan.add_argument("--deviation", action="append", type=float, metavar="D",
                      help="wake-up deviation fraction; repeatable "
                           "(default 0.5 1.0)")
    plan.add_argument("--partition", action="append",
                      choices=("sections", "packed", "whole"),
                      help="partition mode; repeatable "
                           "(default sections packed)")
    plan.add_argument("--budget", type=float, default=0.002, metavar="F",
                      help="max secure-world CPU fraction (default 0.002)")
    plan.add_argument("--tie-break-seeds", type=int, default=0, metavar="N",
                      help="seeds of E9 simulation per contested candidate "
                           "(0 = purely analytical, the default)")
    plan.add_argument("--tie-break-top", type=int, default=3, metavar="N",
                      help="max contested candidates to simulate (default 3)")
    plan.add_argument("--seed-base", type=int, default=2019)
    plan.add_argument("--cache-dir", default=".repro-cache",
                      help="result store root for tie-break simulations")
    plan.add_argument("--json", metavar="FILE",
                      help="write the full search report JSON here")

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: survival/detection matrix across seeds",
    )
    chaos.add_argument("scenario",
                       help="trace scenario to stress (figure4, baseline)")
    chaos.add_argument("--faults", default="smoke", metavar="PLAN",
                       help="fault plan name (default smoke; see "
                            "repro.faults.plan)")
    chaos.add_argument("--seeds", type=int, default=8, metavar="N",
                       help="number of machine seeds (default 8)")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first machine seed; trials use base..base+N-1")
    chaos.add_argument("--fault-seed-base", type=int, default=0,
                       help="offset added to each machine seed to derive its "
                            "fault seed (default 0)")
    chaos.add_argument("--preset", default="juno_r1",
                       help="platform preset (default juno_r1)")
    chaos.add_argument("--duration", type=float, default=None, metavar="S",
                       help="injection horizon in simulated seconds "
                            "(default: the plan's duration)")
    chaos.add_argument("--jobs", type=int,
                       default=max(os.cpu_count() or 1, 1), metavar="N",
                       help="worker processes (0 = serial in-process)")
    chaos.add_argument("--resume", action="store_true",
                       help="serve completed trials from the result cache")
    chaos.add_argument("--timeout", type=float, default=600.0,
                       help="per-trial timeout in seconds (0 disables)")
    chaos.add_argument("--retries", type=int, default=1,
                       help="retries per failing trial before quarantine")
    chaos.add_argument("--cache-dir", default=".repro-cache",
                       help="result store root (default .repro-cache)")
    chaos.add_argument("--quiet", action="store_true",
                       help="progress meter prints only the final tally")
    chaos.add_argument("--no-progress", action="store_true",
                       help="suppress the stderr progress meter entirely")
    chaos.add_argument("--matrix", metavar="FILE",
                       help="write the survival matrix as JSON (CI artifact)")
    chaos.add_argument("-o", "--output",
                       help="write the chaos summary to a file")
    _add_backend_options(chaos)

    report = sub.add_parser("report", help="run the whole suite")
    report.add_argument("--seed", type=int, default=2019)
    report.add_argument("--full", action="store_true")
    report.add_argument("--only", nargs="*", metavar="ID",
                        help="restrict to these experiment ids")
    report.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan experiments out across N worker processes "
                             "(default: CPU count when --full, else serial)")
    report.add_argument("-o", "--output", help="write the report to a file")

    trace = sub.add_parser(
        "trace",
        help="run a scenario and export Perfetto/JSONL traces",
    )
    trace.add_argument("scenario",
                       help="scenario name (figure4, baseline, idle)")
    trace.add_argument("--seed", type=int, default=2019)
    trace.add_argument("--preset", default="juno_r1",
                       help="platform preset (default juno_r1)")
    trace.add_argument("--duration", type=float, default=None, metavar="S",
                       help="simulated seconds to run (default: run until "
                            "--rounds introspection rounds)")
    trace.add_argument("--rounds", type=int, default=4,
                       help="introspection rounds to capture when no "
                            "--duration is given (default 4)")
    trace.add_argument("-o", "--out", metavar="FILE",
                       help="write Chrome/Perfetto trace_event JSON here")
    trace.add_argument("--jsonl", metavar="FILE",
                       help="stream raw trace records to this JSONL file")

    metrics = sub.add_parser(
        "metrics",
        help="render a campaign manifest rollup",
    )
    metrics.add_argument("path",
                         help="manifest.json, a campaign directory, or a "
                              "cache root (most recent campaign wins)")
    metrics.add_argument("--format", default="table",
                         choices=("table", "json"),
                         help="output format (default table; json is the "
                              "sorted-key machine-readable rollup)")
    metrics.add_argument("--top", type=int, default=None, metavar="N",
                         help="keep only the N largest counters and "
                              "histograms")

    dash = sub.add_parser(
        "dash",
        help="render a static HTML dashboard for a campaign",
    )
    dash.add_argument("path",
                      help="campaign directory (or manifest.json / cache "
                           "root; most recent campaign wins)")
    dash.add_argument("-o", "--out", default="dash.html", metavar="FILE",
                      help="output HTML file (default dash.html)")
    dash.add_argument("--json", metavar="FILE",
                      help="also write the deterministic dashboard data "
                           "(byte-identical between serial and --jobs runs)")
    dash.add_argument("--trace", metavar="FILE",
                      help="Perfetto trace_event JSON to render as per-core "
                           "Gantt lanes (from `repro trace -o`)")
    dash.add_argument("--top", type=int, default=None, metavar="N",
                      help="keep only the N largest counters/histograms")
    dash.add_argument("--follow", action="store_true",
                      help="tail a running campaign: re-render until its "
                           "manifest lands (exit 130 if it was cancelled)")
    dash.add_argument("--interval", type=float, default=2.0, metavar="S",
                      help="--follow poll interval in seconds (default 2)")
    dash.add_argument("--max-rounds", type=int, default=0, metavar="N",
                      help="--follow gives up after N rounds (0 = forever; "
                           "exit 3 if the campaign was still running)")

    store = sub.add_parser(
        "store",
        help="maintain a result store: gc compaction, golden-run pins",
    )
    store.add_argument("action", choices=("gc", "pin"),
                       help="gc compacts shards/quarantine; pin protects "
                            "keys from gc")
    store.add_argument("path",
                       help="campaign directory (or a cache root for gc "
                            "across every campaign)")
    store.add_argument("--dry-run", action="store_true",
                       help="report what gc would drop without rewriting")
    store.add_argument("--key", action="append", metavar="KEY",
                       help="trial key to pin (repeatable)")
    store.add_argument("--report", metavar="FILE",
                       help="write the gc report JSON here (CI artifact)")

    bench = sub.add_parser(
        "bench",
        help="run the performance benchmark suite (BENCH_*.json trajectory)",
    )
    bench.add_argument("-o", "--out", metavar="FILE",
                       help="write the full bench JSON here (e.g. BENCH_7.json)")
    bench.add_argument("--check", metavar="FILE",
                       help="compare the deterministic block against a pinned "
                            "JSON file; non-zero exit on drift")
    bench.add_argument("--batch", action="store_true",
                       help="also benchmark the vectorized batch dispatcher "
                            "(scalar vs --batch campaign, batched hashing)")
    bench.add_argument("--batch-seeds", type=int, default=64, metavar="N",
                       help="seeds for the batch campaign benchmark "
                            "(default 64; only with --batch)")
    bench.add_argument("--planner", action="store_true",
                       help="also benchmark adaptive dispatch: fixed-budget "
                            "E9 campaign vs --adaptive at the same CI target")
    bench.add_argument("--planner-seeds", type=int, default=64, metavar="N",
                       help="fixed-budget seed count the adaptive run is "
                            "measured against (default 64)")
    bench.add_argument("--planner-ci-width", type=float, default=75.0,
                       metavar="W",
                       help="target 95%% CI width for the planner benchmark "
                            "(default 75, on E9's avg area gap)")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON campaign job service",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8971,
                       help="bind port (default 8971; 0 picks a free port)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="shared result store root (default .repro-cache)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="concurrent job executions (default 2)")
    serve.add_argument("-v", "--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.add_argument("--no-recover", dest="recover", action="store_false",
                       default=True,
                       help="skip journal replay on startup (jobs from a "
                            "previous run are forgotten, not resumed)")
    serve.add_argument("--max-pending", type=int, default=64, metavar="N",
                       help="pending-queue depth before submissions get "
                            "HTTP 429 + Retry-After (default 64)")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="non-terminal jobs one client may have in "
                            "flight (default 8; 0 = unlimited)")

    worker = sub.add_parser(
        "worker",
        help="drain trial tasks from a file-system queue",
    )
    worker.add_argument("--queue", required=True, metavar="DIR",
                        help="queue directory shared with the supervisor")
    worker.add_argument("--max-idle", type=float, default=0.0, metavar="S",
                        help="exit after S seconds with nothing to claim "
                             "(0 = wait forever)")
    worker.add_argument("--once", action="store_true",
                        help="process a single task and exit")
    worker.add_argument("--lease-ttl", type=float, default=30.0, metavar="S",
                        help="claim lease TTL; the worker heartbeats every "
                             "TTL/3 so supervisors can reclaim dead claims "
                             "(default 30, 0 disables leases)")

    submit = sub.add_parser(
        "submit",
        help="submit a campaign/chaos job to a running `repro serve`",
    )
    submit.add_argument("target",
                        help="experiment id (campaign) or scenario (--chaos)")
    submit.add_argument("--chaos", action="store_true",
                        help="submit a chaos sweep instead of a campaign")
    submit.add_argument("--seeds", type=int, default=8, metavar="N")
    submit.add_argument("--seed-base", type=int, default=0)
    submit.add_argument("--preset", action="append", metavar="NAME",
                        help="platform preset; repeat for a grid "
                             "(default juno_r1)")
    submit.add_argument("--full", action="store_true",
                        help="paper-scale trials")
    submit.add_argument("--faults", default="smoke", metavar="PLAN",
                        help="fault plan for --chaos (default smoke)")
    submit.add_argument("--fault-seed-base", type=int, default=0)
    submit.add_argument("--duration", type=float, default=None, metavar="S",
                        help="chaos injection horizon in simulated seconds")
    submit.add_argument("--backend", default="auto",
                        choices=("auto", "inline", "thread", "fork", "queue"),
                        help="executor backend the service should use")
    submit.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker parallelism inside the service job")
    submit.add_argument("--queue-dir", metavar="DIR", default=None,
                        help="task queue directory for --backend queue")
    submit.add_argument("--queue-workers", type=int, default=0, metavar="N",
                        help="service-side drain threads for --backend queue")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="per-trial timeout in seconds (0 disables)")
    submit.add_argument("--retries", type=int, default=1)
    submit.add_argument("--adaptive", action="store_true",
                        help="sequential-CI adaptive dispatch (campaign "
                             "jobs; needs --ci-width)")
    submit.add_argument("--ci-width", type=float, default=None, metavar="W",
                        help="target 95%% CI width for --adaptive")
    submit.add_argument("--ci-quantity", default=None, metavar="NAME",
                        help="comparison quantity the CI tracks")
    submit.add_argument("--min-seeds", type=int, default=8, metavar="N")
    submit.add_argument("--round-size", type=int, default=4, metavar="N")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print its report")
    submit.add_argument("--wait-timeout", type=float, default=None, metavar="S",
                        help="give up waiting after S seconds")
    submit.add_argument("--json", action="store_true",
                        help="print the final job state as JSON on failure")
    _add_client_options(submit)

    status = sub.add_parser(
        "status",
        help="show job state (all jobs, or one by id)",
    )
    status.add_argument("job_id", nargs="?", default=None)
    status.add_argument("--json", action="store_true",
                        help="print raw JSON instead of a summary line")
    _add_client_options(status)

    fetch = sub.add_parser(
        "fetch",
        help="fetch a job's manifest (default), report, or survival matrix",
    )
    fetch.add_argument("job_id")
    fetch.add_argument("--result", action="store_true",
                       help="fetch the rendered report instead of the manifest")
    fetch.add_argument("--matrix", action="store_true",
                       help="fetch the chaos survival matrix")
    fetch.add_argument("-o", "--output", metavar="FILE",
                       help="write to a file instead of stdout")
    _add_client_options(fetch)

    cancel = sub.add_parser("cancel", help="cancel a submitted job")
    cancel.add_argument("job_id")
    _add_client_options(cancel)

    demo = sub.add_parser("demo", help="narrated SATIN detection demo")
    demo.add_argument("--seed", type=int, default=42)

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "experiment": _cmd_experiment,
    "campaign": _cmd_campaign,
    "plan": _cmd_plan,
    "chaos": _cmd_chaos,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "dash": _cmd_dash,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
    "cancel": _cmd_cancel,
    "bench": _cmd_bench,
    "demo": _cmd_demo,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
