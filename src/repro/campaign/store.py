"""Content-addressed result store: JSONL shards under ``.repro-cache/``.

Layout::

    <root>/<campaign_id>/
        shard-00.jsonl .. shard-0f.jsonl   completed trial records
        quarantine.jsonl                    trials that failed every attempt
        index.json                          key -> (shard, offset, length)
        pins.json                           keys gc must never touch

A record is one JSON object per line carrying at least ``key`` (the trial's
content address from :mod:`repro.campaign.digest`).  Records are routed to
a shard by the first hex character of their key, so warm-cache loads can
stream 16 small files instead of one monolith and shard merging is easy to
exercise in tests.

Only the campaign supervisor writes (workers hand results back over a
queue), so appends need no cross-process locking; each line is flushed as
it is written, which makes the cache crash-consistent at line granularity.
Corrupt trailing lines (a run killed mid-write) are skipped with a warning
— counted once per file on :attr:`ResultStore.truncated_records` so the
supervisor can surface cache decay in the manifest's store-health section.

The **index** makes ``--resume`` O(1) per key: ``index.json`` maps every
live record key to its byte extent inside a shard, so a warm resume seeks
straight to the records it needs instead of streaming every shard.  The
index is derived state — if it is missing (a store written before indexes
existed), stale (shards grew since the last save) or corrupt, the store
rebuilds it transparently: grown shards are tail-scanned from the last
indexed offset, everything else triggers a full rebuild.  Counters
(:attr:`full_scans`, :attr:`tail_scans`, :attr:`index_rebuilds`,
:attr:`lazy_reindexed`, :attr:`record_reads`) expose which path served a
run, and tests pin "warm resume performs no full shard scan" on them.

:meth:`gc` compacts the store in place: superseded duplicate records and
torn lines are dropped from shards, and quarantine entries that have since
succeeded are removed — except for **pinned** keys (``pins.json``), whose
lines are preserved byte-for-byte so golden runs survive any compaction.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: Shard fan-out: one shard per first hex digit of the key.
SHARD_COUNT = 16

_QUARANTINE = "quarantine.jsonl"

#: Name of the per-campaign key index file.
INDEX_NAME = "index.json"

#: Bumped when the index layout changes shape.
INDEX_SCHEMA = "satin-store-index/v1"

#: Name of the pinned-keys file honoured by :meth:`ResultStore.gc`.
PINS_NAME = "pins.json"


def _parse_record(line: str) -> Optional[Dict[str, Any]]:
    """One JSONL line -> record dict, or None for a torn/foreign line."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None  # torn write from a killed run
    if isinstance(record, dict) and "key" in record:
        return record
    return None


class ResultStore:
    """Append-only JSONL store for one campaign's trial records."""

    def __init__(self, root: str, campaign_id: str) -> None:
        self.root = root
        self.campaign_id = campaign_id
        self.directory = os.path.join(root, campaign_id)
        os.makedirs(self.directory, exist_ok=True)
        #: in-memory record cache (filled lazily or by :meth:`load`).
        self._records: Dict[str, Dict[str, Any]] = {}
        #: key -> (shard basename, byte offset, byte length).
        self._entries: Dict[str, Tuple[str, int, int]] = {}
        #: shard basename -> byte size covered by the index.
        self._indexed_sizes: Dict[str, int] = {}
        self._index_ready = False
        self._fully_loaded = False
        #: torn/truncated JSONL lines per file path, counted once per path
        #: (re-iterating a file overwrites its count instead of adding).
        self._truncated_by_path: Dict[str, int] = {}
        self._warned_paths: Dict[str, int] = {}
        # --- observability counters (surfaced in the manifest) ----------
        #: full streaming scans of every shard (the pre-index slow path).
        self.full_scans = 0
        #: incremental scans of shard tails that grew past the saved index.
        self.tail_scans = 0
        #: index rebuilt from scratch (corrupt/stale/shrunk shards).
        self.index_rebuilds = 0
        #: migration shim: a pre-index store was indexed on first open.
        self.lazy_reindexed = 0
        #: targeted single-record reads served straight from the index.
        self.record_reads = 0

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------

    def shard_path(self, key: str) -> str:
        digit = key[0] if key and key[0] in "0123456789abcdef" else "0"
        return os.path.join(self.directory, f"shard-0{digit}.jsonl")

    def shard_paths(self) -> List[str]:
        """Every existing shard file, in name order (deterministic)."""
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return []
        return [
            os.path.join(self.directory, n)
            for n in names
            if n.startswith("shard-") and n.endswith(".jsonl")
        ]

    @property
    def truncated_records(self) -> int:
        """Torn JSONL lines seen across every file, counted once per path."""
        return sum(self._truncated_by_path.values())

    #: Back-compat alias: older callers/tests read ``corrupt_lines_skipped``.
    @property
    def corrupt_lines_skipped(self) -> int:
        return self.truncated_records

    def _note_truncated(self, path: str, count: int, where: str) -> None:
        self._truncated_by_path[path] = count
        if count > self._warned_paths.get(path, 0):
            self._warned_paths[path] = count
            warnings.warn(
                f"skipping corrupt record at {where} "
                "(truncated write from an interrupted run?)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _iter_records(self, path: str) -> Iterator[Dict[str, Any]]:
        try:
            # errors="replace": a torn multi-byte sequence at the tail must
            # not abort the whole shard.
            handle = open(path, "r", encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return
        truncated = 0
        with handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                record = _parse_record(line)
                if record is not None:
                    yield record
                else:
                    truncated += 1
                    self._note_truncated(path, truncated, f"{path}:{number}")
        if path in self._truncated_by_path or truncated:
            self._truncated_by_path[path] = truncated

    # ------------------------------------------------------------------
    # Index plumbing
    # ------------------------------------------------------------------

    def index_path(self) -> str:
        return os.path.join(self.directory, INDEX_NAME)

    def _scan_shard(
        self, path: str, start: int = 0, keep_records: bool = False
    ) -> None:
        """Index records in ``path`` from byte offset ``start`` onward."""
        name = os.path.basename(path)
        truncated = 0 if start == 0 else self._truncated_by_path.get(path, 0)
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            return
        with handle:
            handle.seek(start)
            offset = start
            for raw in handle:
                length = len(raw)
                record = _parse_record(raw.decode("utf-8", errors="replace"))
                if record is not None:
                    self._entries[record["key"]] = (name, offset, length)
                    if keep_records:
                        self._records[record["key"]] = record
                else:
                    truncated += 1
                    self._note_truncated(
                        path, truncated, f"{path} @ byte {offset}"
                    )
                offset += length
            self._indexed_sizes[name] = offset

    def _reindex(self) -> None:
        """Rebuild the whole index from the shards on disk."""
        self._entries = {}
        self._indexed_sizes = {}
        for path in self.shard_paths():
            self._scan_shard(path)
        self._index_ready = True

    def ensure_index(self) -> None:
        """Load or (re)build the key index; cheap once ready.

        A store written before indexes existed is lazily re-indexed on
        first open (:attr:`lazy_reindexed`) and the index is saved, so old
        ``.repro-cache/`` dirs keep working and get fast on first touch.
        """
        if self._index_ready:
            return
        saved: Optional[Dict[str, Any]] = None
        try:
            with open(self.index_path(), "r", encoding="utf-8") as handle:
                candidate = json.load(handle)
            if (
                isinstance(candidate, dict)
                and candidate.get("schema") == INDEX_SCHEMA
                and isinstance(candidate.get("entries"), dict)
                and isinstance(candidate.get("shards"), dict)
            ):
                saved = candidate
        except FileNotFoundError:
            saved = None
        except (ValueError, OSError):
            saved = None

        shard_files = self.shard_paths()
        if saved is None:
            if os.path.isfile(self.index_path()):
                # present but unreadable/corrupt -> rebuild
                self.index_rebuilds += 1
                self._reindex()
                self.save_index()
            elif shard_files:
                # pre-index store: migrate on first open
                self.lazy_reindexed += 1
                self.index_rebuilds += 1
                self._reindex()
                self.save_index()
            else:
                self._entries = {}
                self._indexed_sizes = {}
                self._index_ready = True
            return

        entries = {
            key: (value[0], int(value[1]), int(value[2]))
            for key, value in saved["entries"].items()
        }
        indexed = {name: int(size) for name, size in saved["shards"].items()}
        on_disk = {os.path.basename(p): p for p in shard_files}
        stale = False
        grown: List[Tuple[str, int]] = []
        for name, size in indexed.items():
            if name not in on_disk:
                stale = True  # indexed shard vanished
                break
        if not stale:
            for name, path in on_disk.items():
                actual = os.path.getsize(path)
                recorded = indexed.get(name, 0)
                if actual < recorded:
                    stale = True  # shard shrank (external rewrite)
                    break
                if actual > recorded:
                    grown.append((path, recorded))
        if stale:
            self.index_rebuilds += 1
            self._reindex()
            self.save_index()
            return
        self._entries = entries
        self._indexed_sizes = indexed
        self._index_ready = True
        if grown:
            self.tail_scans += len(grown)
            for path, recorded in grown:
                self._scan_shard(path, start=recorded)
            self.save_index()

    def save_index(self) -> str:
        """Persist the index atomically; returns the index path."""
        from repro.campaign.digest import CODE_VERSION

        self.ensure_index()
        body = {
            "schema": INDEX_SCHEMA,
            "code_version": CODE_VERSION,
            "entries": {
                key: list(value) for key, value in sorted(self._entries.items())
            },
            "shards": dict(sorted(self._indexed_sizes.items())),
        }
        path = self.index_path()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(body, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def _read_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """Seek-read one record by its index entry; None on any mismatch."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        name, offset, length = entry
        path = os.path.join(self.directory, name)
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                raw = handle.read(length)
        except (FileNotFoundError, OSError):
            return None
        record = _parse_record(raw.decode("utf-8", errors="replace"))
        if record is None or record.get("key") != key:
            return None  # index out of step with the shard
        self.record_reads += 1
        return record

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def load(self) -> int:
        """Read every shard into the in-memory index; returns record count.

        Later lines win, so a re-run record supersedes an older one.  This
        is the full-scan slow path — indexed lookups (:meth:`get` /
        :meth:`ok_record`) avoid it on warm stores.
        """
        self.full_scans += 1
        self._records = {}
        self._truncated_by_path = {}
        self._entries = {}
        self._indexed_sizes = {}
        for path in self.shard_paths():
            self._scan_shard(path, keep_records=True)
        self._index_ready = True
        self._fully_loaded = True
        return len(self._records)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        if key in self._records:
            return self._records[key]
        if self._fully_loaded:
            return None
        self.ensure_index()
        if key not in self._entries:
            return None
        record = self._read_entry(key)
        if record is None:
            # Index pointed somewhere wrong — fall back to a full scan so
            # correctness never depends on the derived state.
            self.load()
            return self._records.get(key)
        self._records[key] = record
        return record

    def ok_record(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key`` iff it is a servable completion.

        Quarantine entries and records without a payload (written by an
        older code version, or torn) are not cache hits.
        """
        record = self.get(key)
        if record is not None and record.get("status") == "ok" and "payload" in record:
            return record
        return None

    def hits(self, keys) -> int:
        """How many of ``keys`` the store can serve without re-running.

        The service polls this to answer "would this job be a pure cache
        hit?" and to report progress for jobs draining a shared queue.
        """
        return sum(1 for key in keys if self.ok_record(key) is not None)

    def put(self, record: Dict[str, Any]) -> None:
        """Append one completed-trial record to its shard (flushed)."""
        self.ensure_index()
        key = record["key"]
        path = self.shard_path(key)
        name = os.path.basename(path)
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            offset = os.path.getsize(path)
        except OSError:
            offset = 0
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        self._entries[key] = (name, offset, len(data))
        self._indexed_sizes[name] = offset + len(data)
        self._records[key] = record

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        self.ensure_index()
        return len(self._entries)

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def quarantine_path(self) -> str:
        return os.path.join(self.directory, _QUARANTINE)

    def quarantine(self, record: Dict[str, Any]) -> None:
        """Record a trial that failed every attempt.

        Quarantined records are *not* served as cache hits: a later
        ``--resume`` run will retry the trial (the failure may have been
        environmental).
        """
        with open(self.quarantine_path(), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def quarantined(self) -> List[Dict[str, Any]]:
        return list(self._iter_records(self.quarantine_path()))

    # ------------------------------------------------------------------
    # Pins and garbage collection
    # ------------------------------------------------------------------

    def pins_path(self) -> str:
        return os.path.join(self.directory, PINS_NAME)

    def pinned_keys(self) -> Set[str]:
        try:
            with open(self.pins_path(), "r", encoding="utf-8") as handle:
                pins = json.load(handle)
        except (FileNotFoundError, ValueError, OSError):
            return set()
        if isinstance(pins, list):
            return {str(key) for key in pins}
        return set()

    def pin(self, key: str) -> None:
        """Mark ``key`` as a golden run gc must never touch."""
        pins = self.pinned_keys()
        pins.add(key)
        tmp = self.pins_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(sorted(pins), handle, indent=1)
            handle.write("\n")
        os.replace(tmp, self.pins_path())

    def gc(self, dry_run: bool = False) -> Dict[str, Any]:
        """Compact shards and the quarantine file; returns a report.

        * shard records superseded by a later record for the same key are
          dropped (the latest one survives);
        * torn/corrupt lines are dropped;
        * quarantine entries whose key has since completed ok are dropped
          (the failure resolved itself on retry/resume);
        * every line belonging to a **pinned** key is preserved verbatim —
          gc never touches pinned golden runs.

        The index is rebuilt and saved afterwards unless ``dry_run``.
        """
        pinned = self.pinned_keys()
        report: Dict[str, Any] = {
            "dry_run": dry_run,
            "shards_compacted": 0,
            "records_kept": 0,
            "superseded_dropped": 0,
            "truncated_dropped": 0,
            "quarantine_kept": 0,
            "quarantine_resolved": 0,
            "pinned": len(pinned),
            "bytes_before": 0,
            "bytes_after": 0,
        }

        ok_keys: Set[str] = set()
        for path in self.shard_paths():
            report["bytes_before"] += os.path.getsize(path)
            lines: List[bytes] = []
            keys: List[Optional[str]] = []
            with open(path, "rb") as handle:
                for raw in handle:
                    record = _parse_record(raw.decode("utf-8", errors="replace"))
                    if record is None:
                        report["truncated_dropped"] += 1
                        continue
                    lines.append(raw)
                    keys.append(record["key"])
                    ok_keys.add(record["key"])
            last_for_key = {key: i for i, key in enumerate(keys)}
            keep: List[bytes] = []
            for i, (raw, key) in enumerate(zip(lines, keys)):
                if key in pinned or last_for_key[key] == i:
                    keep.append(raw)
                else:
                    report["superseded_dropped"] += 1
            report["records_kept"] += len(keep)
            new_blob = b"".join(keep)
            report["bytes_after"] += len(new_blob)
            if not dry_run:
                tmp = path + ".tmp"
                with open(tmp, "wb") as handle:
                    handle.write(new_blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
                report["shards_compacted"] += 1

        qpath = self.quarantine_path()
        if os.path.isfile(qpath):
            report["bytes_before"] += os.path.getsize(qpath)
            keep_q: List[bytes] = []
            with open(qpath, "rb") as handle:
                for raw in handle:
                    record = _parse_record(raw.decode("utf-8", errors="replace"))
                    if record is None:
                        report["truncated_dropped"] += 1
                        continue
                    key = record["key"]
                    if key in ok_keys and key not in pinned:
                        report["quarantine_resolved"] += 1
                        continue
                    keep_q.append(raw)
            report["quarantine_kept"] = len(keep_q)
            blob = b"".join(keep_q)
            report["bytes_after"] += len(blob)
            if not dry_run:
                tmp = qpath + ".tmp"
                with open(tmp, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, qpath)

        if not dry_run:
            # Offsets moved: rebuild the derived index from the new truth.
            self._records = {}
            self._fully_loaded = False
            self._truncated_by_path = {}
            self.index_rebuilds += 1
            self._reindex()
            self.save_index()
        return report

    # ------------------------------------------------------------------
    # Store health (manifest / dashboard section)
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Deterministic store-health summary for manifests/dashboards.

        Everything here is derived from record *contents and counts*, never
        wall-clock or byte sizes, so a ``--jobs N`` and a serial run over
        the same grid report identical health.
        """
        self.ensure_index()
        per_shard: Dict[str, int] = {}
        for name, _offset, _length in self._entries.values():
            per_shard[name] = per_shard.get(name, 0) + 1
        return {
            "records": len(self._entries),
            "shards": dict(sorted(per_shard.items())),
            "quarantined": len(self.quarantined()),
            "truncated_records": self.truncated_records,
            "pinned": len(self.pinned_keys()),
            "index": {
                "full_scans": self.full_scans,
                "tail_scans": self.tail_scans,
                "rebuilds": self.index_rebuilds,
                "lazy_reindexed": self.lazy_reindexed,
                "record_reads": self.record_reads,
            },
        }


# ---------------------------------------------------------------------------
# Job-scoped artifact prefixes
# ---------------------------------------------------------------------------
#
# Trial records are shared across every job that maps to the same campaign
# grid (that is the whole point of content addressing), but each service
# job also owns artifacts that must NOT be shared — its JobState snapshot
# and the manifest it rendered.  Those live under a job-scoped prefix
# beside the campaign directories:
#
#     <root>/jobs/<job_id>/job.json
#     <root>/jobs/<job_id>/manifest.json

JOBS_PREFIX = "jobs"


def job_artifact_dir(root: str, job_id: str, create: bool = True) -> str:
    """The job-scoped artifact directory for ``job_id`` under ``root``."""
    path = os.path.join(root, JOBS_PREFIX, job_id)
    if create:
        os.makedirs(path, exist_ok=True)
    return path


def campaign_dirs(root: str) -> List[str]:
    """Campaign directories under a cache root, in name order.

    A campaign directory is any direct child that holds shard files, a
    quarantine file, or a manifest — the ``jobs/`` artifact prefix is
    excluded.
    """
    try:
        names = sorted(os.listdir(root))
    except FileNotFoundError:
        return []
    found = []
    for name in names:
        if name == JOBS_PREFIX:
            continue
        path = os.path.join(root, name)
        if not os.path.isdir(path):
            continue
        children = os.listdir(path)
        if any(
            child.startswith("shard-") and child.endswith(".jsonl")
            for child in children
        ) or _QUARANTINE in children or "manifest.json" in children:
            found.append(path)
    return found
