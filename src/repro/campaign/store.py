"""Content-addressed result store: JSONL shards under ``.repro-cache/``.

Layout::

    <root>/<campaign_id>/
        shard-00.jsonl .. shard-0f.jsonl   completed trial records
        quarantine.jsonl                    trials that failed every attempt

A record is one JSON object per line carrying at least ``key`` (the trial's
content address from :mod:`repro.campaign.digest`).  Records are routed to
a shard by the first hex character of their key, so warm-cache loads can
stream 16 small files instead of one monolith and shard merging is easy to
exercise in tests.

Only the campaign supervisor writes (workers hand results back over a
queue), so appends need no cross-process locking; each line is flushed as
it is written, which makes the cache crash-consistent at line granularity.
Corrupt trailing lines (a run killed mid-write) are skipped on load with a
warning; the skip count is kept on :attr:`ResultStore.corrupt_lines_skipped`
so the supervisor can surface cache decay in the manifest.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, Iterator, List, Optional

#: Shard fan-out: one shard per first hex digit of the key.
SHARD_COUNT = 16

_QUARANTINE = "quarantine.jsonl"


class ResultStore:
    """Append-only JSONL store for one campaign's trial records."""

    def __init__(self, root: str, campaign_id: str) -> None:
        self.root = root
        self.campaign_id = campaign_id
        self.directory = os.path.join(root, campaign_id)
        os.makedirs(self.directory, exist_ok=True)
        self._index: Dict[str, Dict[str, Any]] = {}
        self._loaded = False
        #: Torn/truncated JSONL lines skipped on the last :meth:`load`
        #: (a run killed mid-append leaves at most one per shard).  The
        #: supervisor surfaces this in the manifest so silent cache decay
        #: is visible on ``--resume``.
        self.corrupt_lines_skipped = 0

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------

    def shard_path(self, key: str) -> str:
        digit = key[0] if key and key[0] in "0123456789abcdef" else "0"
        return os.path.join(self.directory, f"shard-0{digit}.jsonl")

    def shard_paths(self) -> List[str]:
        """Every existing shard file, in name order (deterministic)."""
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return []
        return [
            os.path.join(self.directory, n)
            for n in names
            if n.startswith("shard-") and n.endswith(".jsonl")
        ]

    def _iter_records(self, path: str) -> Iterator[Dict[str, Any]]:
        try:
            # errors="replace": a torn multi-byte sequence at the tail must
            # not abort the whole shard.
            handle = open(path, "r", encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return
        with handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    record = None  # torn write from a killed run
                if isinstance(record, dict) and "key" in record:
                    yield record
                else:
                    self.corrupt_lines_skipped += 1
                    warnings.warn(
                        f"skipping corrupt record at {path}:{number} "
                        "(truncated write from an interrupted run?)",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def load(self) -> int:
        """Read every shard into the in-memory index; returns record count.

        Later lines win, so a re-run record supersedes an older one.
        """
        self._index = {}
        self.corrupt_lines_skipped = 0
        for path in self.shard_paths():
            for record in self._iter_records(path):
                self._index[record["key"]] = record
        self._loaded = True
        return len(self._index)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        if not self._loaded:
            self.load()
        return self._index.get(key)

    def ok_record(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key`` iff it is a servable completion.

        Quarantine entries and records without a payload (written by an
        older code version, or torn) are not cache hits.
        """
        record = self.get(key)
        if record is not None and record.get("status") == "ok" and "payload" in record:
            return record
        return None

    def hits(self, keys) -> int:
        """How many of ``keys`` the store can serve without re-running.

        The service polls this to answer "would this job be a pure cache
        hit?" and to report progress for jobs draining a shared queue.
        """
        return sum(1 for key in keys if self.ok_record(key) is not None)

    def put(self, record: Dict[str, Any]) -> None:
        """Append one completed-trial record to its shard (flushed)."""
        key = record["key"]
        with open(self.shard_path(key), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._index[key] = record

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self._loaded:
            self.load()
        return len(self._index)

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def quarantine_path(self) -> str:
        return os.path.join(self.directory, _QUARANTINE)

    def quarantine(self, record: Dict[str, Any]) -> None:
        """Record a trial that failed every attempt.

        Quarantined records are *not* served as cache hits: a later
        ``--resume`` run will retry the trial (the failure may have been
        environmental).
        """
        with open(self.quarantine_path(), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def quarantined(self) -> List[Dict[str, Any]]:
        return list(self._iter_records(self.quarantine_path()))


# ---------------------------------------------------------------------------
# Job-scoped artifact prefixes
# ---------------------------------------------------------------------------
#
# Trial records are shared across every job that maps to the same campaign
# grid (that is the whole point of content addressing), but each service
# job also owns artifacts that must NOT be shared — its JobState snapshot
# and the manifest it rendered.  Those live under a job-scoped prefix
# beside the campaign directories:
#
#     <root>/jobs/<job_id>/job.json
#     <root>/jobs/<job_id>/manifest.json

JOBS_PREFIX = "jobs"


def job_artifact_dir(root: str, job_id: str, create: bool = True) -> str:
    """The job-scoped artifact directory for ``job_id`` under ``root``."""
    path = os.path.join(root, JOBS_PREFIX, job_id)
    if create:
        os.makedirs(path, exist_ok=True)
    return path
