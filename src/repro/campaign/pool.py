"""Crash-isolated worker pool for Monte-Carlo trial fan-out.

Each worker is a separate OS process running ``_worker_main``: it pulls
task dicts off a private queue, applies the trial function (resolved from
a ``"module:function"`` path so it survives process boundaries), and ships
the result back over a shared queue.  The supervisor enforces:

* **per-trial timeout** — a worker that exceeds it is killed and respawned;
* **crash isolation** — a worker dying mid-trial (segfault, ``os._exit``,
  OOM-kill) fails only that trial, never the campaign;
* **bounded retry** — a failed trial is re-dispatched until it has used
  ``max_attempts`` attempts, then reported as quarantined.

``jobs=0`` selects the *inline* mode: trials run serially in-process with
no subprocess overhead (and no timeout enforcement) — the reference
"serial equivalent" a parallel campaign must match bit-for-bit.

The fork start method is preferred (workers inherit the loaded simulator
modules, so spin-up is milliseconds); spawn is the fallback on platforms
without fork.
"""

from __future__ import annotations

import importlib
import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Dict, List, Optional

from repro.errors import CampaignError

#: Default attempts per trial: the first run plus one retry.
DEFAULT_MAX_ATTEMPTS = 2

#: How long the supervisor blocks on the result queue per loop iteration.
_POLL_INTERVAL = 0.05

#: Respawn backoff: first cooldown after a kill, and the exponential cap.
#: A worker dying repeatedly (OOM storm, broken native dep) must not be
#: respawned in a tight loop — each consecutive crash doubles the cooldown.
DEFAULT_RESPAWN_BACKOFF_BASE = 0.25
DEFAULT_RESPAWN_BACKOFF_CAP = 10.0


def _respawn_backoff(key: str, crash_count: int, base: float, cap: float) -> float:
    """Capped exponential backoff with deterministic jitter.

    The jitter (up to +25%) is derived from ``sha256(key:crash_count)``
    rather than a live RNG, so a re-run of the same failing campaign
    produces the same cooldown schedule — wall-clock behaviour stays as
    reproducible as the trial results themselves.
    """
    delay = min(cap, base * (2.0 ** max(0, crash_count - 1)))
    digest = sha256(f"{key}:{crash_count}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return min(cap, delay * (1.0 + 0.25 * fraction))


def resolve_function(path: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Resolve a ``"package.module:function"`` path to a callable."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise CampaignError(f"bad trial-function path {path!r} (want 'module:function')")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise CampaignError(f"{module_name!r} has no attribute {attr!r}") from None


@dataclass
class TrialOutcome:
    """Final fate of one task after all attempts."""

    key: str
    status: str  # "ok" | "error" | "timeout" | "crashed"
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    attempts: int = 0
    #: non-final failures absorbed by the retry budget, e.g. ["timeout"].
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _worker_main(fn_path: str, task_queue, result_queue) -> None:
    """Worker loop: apply the trial function until a ``None`` sentinel."""
    fn = resolve_function(fn_path)
    while True:
        task = task_queue.get()
        if task is None:
            return
        started = time.monotonic()
        try:
            payload = fn(task)
            result_queue.put(
                {
                    "key": task["key"],
                    "ok": True,
                    "payload": payload,
                    "elapsed": time.monotonic() - started,
                }
            )
        except BaseException:
            result_queue.put(
                {
                    "key": task["key"],
                    "ok": False,
                    "error": traceback.format_exc(limit=20),
                    "elapsed": time.monotonic() - started,
                }
            )


class _WorkerSlot:
    """One worker process plus its private task queue and current task."""

    def __init__(self, context, fn_path: str, result_queue) -> None:
        self._context = context
        self._fn_path = fn_path
        self._result_queue = result_queue
        self.task_queue = context.Queue()
        self.current: Optional[Dict[str, Any]] = None
        self.started_at = 0.0
        #: consecutive kills of this slot's process; reset by any clean
        #: result, drives the respawn cooldown.
        self.crash_count = 0
        self.cooldown_until = 0.0
        self.process = context.Process(
            target=_worker_main,
            args=(fn_path, self.task_queue, result_queue),
            daemon=True,
        )
        self.process.start()

    @property
    def busy(self) -> bool:
        return self.current is not None

    def assign(self, task: Dict[str, Any]) -> None:
        self.current = task
        self.started_at = time.monotonic()
        self.task_queue.put(task)

    def respawn(self) -> None:
        """Kill the current process (if needed) and start a fresh one."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=5.0)
        self.task_queue.close()
        self.task_queue = self._context.Queue()
        self.current = None
        self.process = self._context.Process(
            target=_worker_main,
            args=(self._fn_path, self.task_queue, self._result_queue),
            daemon=True,
        )
        self.process.start()

    def shutdown(self) -> None:
        try:
            self.task_queue.put(None)
        except (ValueError, OSError):  # pragma: no cover - queue closed
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def run_tasks(
    tasks: List[Dict[str, Any]],
    fn_path: str,
    jobs: int = 1,
    timeout: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    on_final: Optional[Callable[[Dict[str, Any], TrialOutcome], None]] = None,
    on_retry: Optional[Callable[[Dict[str, Any], str], None]] = None,
    metrics: Optional[Any] = None,
    respawn_backoff_base: float = DEFAULT_RESPAWN_BACKOFF_BASE,
    respawn_backoff_cap: float = DEFAULT_RESPAWN_BACKOFF_CAP,
) -> Dict[str, TrialOutcome]:
    """Run every task through the pool; returns ``key -> TrialOutcome``.

    Every task dict must carry a unique ``"key"``.  ``on_final`` fires once
    per task with its final outcome (in completion order); ``on_retry``
    fires for each absorbed failure.  The call returns only when every
    task has a final outcome — a hung or crashed worker never wedges the
    campaign.  ``metrics`` (a supervisor-side
    :class:`~repro.obs.metrics.MetricsRegistry`) receives dispatch,
    timeout-kill, respawn and backoff counters.  A slot whose process had
    to be killed cools down for a capped-exponential, deterministically
    jittered backoff (see :func:`_respawn_backoff`) before it is handed
    new work.
    """
    keys = [t["key"] for t in tasks]
    if len(set(keys)) != len(keys):
        raise CampaignError("duplicate task keys in one pool run")
    if max_attempts < 1:
        raise CampaignError(f"max_attempts must be >= 1, got {max_attempts}")
    if jobs < 0:
        raise CampaignError(f"jobs must be >= 0, got {jobs}")

    if not tasks:
        return {}

    def count(name: str) -> None:
        if metrics is not None:
            metrics.counter(name).inc()

    if jobs == 0:
        return _run_inline(tasks, fn_path, max_attempts, on_final, on_retry, count)

    context = _pool_context()
    result_queue = context.Queue()
    slots = [_WorkerSlot(context, fn_path, result_queue) for _ in range(min(jobs, len(tasks)))]
    pending: List[Dict[str, Any]] = list(tasks)
    attempts: Dict[str, int] = {t["key"]: 0 for t in tasks}
    failures: Dict[str, List[str]] = {t["key"]: [] for t in tasks}
    elapsed_total: Dict[str, float] = {t["key"]: 0.0 for t in tasks}
    by_key: Dict[str, Dict[str, Any]] = {t["key"]: t for t in tasks}
    outcomes: Dict[str, TrialOutcome] = {}

    def finalize(task: Dict[str, Any], outcome: TrialOutcome) -> None:
        outcomes[task["key"]] = outcome
        if on_final is not None:
            on_final(task, outcome)

    def record_failure(task: Dict[str, Any], kind: str, error: str) -> None:
        key = task["key"]
        failures[key].append(kind)
        if attempts[key] < max_attempts:
            if on_retry is not None:
                on_retry(task, kind)
            pending.append(task)
        else:
            finalize(
                task,
                TrialOutcome(
                    key=key,
                    status=kind,
                    error=error,
                    elapsed=elapsed_total[key],
                    attempts=attempts[key],
                    failures=failures[key][:-1],
                ),
            )

    def handle_message(message: Dict[str, Any]) -> None:
        key = message["key"]
        slot = next((s for s in slots if s.current and s.current["key"] == key), None)
        if slot is None:
            return  # stale result from a worker we already gave up on
        task = slot.current
        slot.current = None
        slot.crash_count = 0  # any message proves the process is healthy
        elapsed_total[key] += message.get("elapsed", 0.0)
        if message["ok"]:
            finalize(
                task,
                TrialOutcome(
                    key=key,
                    status="ok",
                    payload=message["payload"],
                    elapsed=elapsed_total[key],
                    attempts=attempts[key],
                    failures=failures[key],
                ),
            )
        else:
            record_failure(task, "error", message.get("error", "unknown worker error"))

    def cool_down(slot: _WorkerSlot, key: str) -> None:
        """Apply the post-kill respawn backoff to a slot."""
        slot.crash_count += 1
        delay = _respawn_backoff(
            key, slot.crash_count, respawn_backoff_base, respawn_backoff_cap
        )
        slot.cooldown_until = time.monotonic() + delay
        count("campaign.respawn_backoffs")
        if metrics is not None:
            metrics.histogram("campaign.respawn_backoff_seconds").observe(delay)

    try:
        while len(outcomes) < len(tasks):
            # Dispatch work to idle slots (cooling slots sit this round out).
            now = time.monotonic()
            for slot in slots:
                if pending and not slot.busy and now >= slot.cooldown_until:
                    task = pending.pop(0)
                    attempts[task["key"]] += 1
                    count("campaign.pool_dispatches")
                    slot.assign(task)

            # Collect any finished results.
            try:
                handle_message(result_queue.get(timeout=_POLL_INTERVAL))
                while True:  # drain without blocking
                    handle_message(result_queue.get_nowait())
            except queue_module.Empty:
                pass

            # Police the workers: timeouts first, then crashes.
            now = time.monotonic()
            for slot in slots:
                if not slot.busy:
                    continue
                task = slot.current
                key = task["key"]
                if timeout is not None and now - slot.started_at > timeout:
                    elapsed_total[key] += now - slot.started_at
                    count("campaign.worker_respawns")
                    slot.respawn()
                    cool_down(slot, key)
                    record_failure(task, "timeout", f"trial exceeded {timeout:g}s; worker killed")
                elif not slot.process.is_alive():
                    exitcode = slot.process.exitcode
                    elapsed_total[key] += now - slot.started_at
                    count("campaign.worker_respawns")
                    slot.respawn()
                    cool_down(slot, key)
                    record_failure(
                        task, "crashed", f"worker died mid-trial (exitcode {exitcode})"
                    )
    finally:
        for slot in slots:
            slot.shutdown()
        result_queue.close()

    return outcomes


def _run_inline(
    tasks: List[Dict[str, Any]],
    fn_path: str,
    max_attempts: int,
    on_final: Optional[Callable[[Dict[str, Any], TrialOutcome], None]],
    on_retry: Optional[Callable[[Dict[str, Any], str], None]],
    count: Callable[[str], None] = lambda name: None,
) -> Dict[str, TrialOutcome]:
    """jobs=0: serial in-process execution (the reference path)."""
    fn = resolve_function(fn_path)
    outcomes: Dict[str, TrialOutcome] = {}
    for task in tasks:
        key = task["key"]
        failures: List[str] = []
        elapsed = 0.0
        for attempt in range(1, max_attempts + 1):
            count("campaign.pool_dispatches")
            started = time.monotonic()
            try:
                payload = fn(task)
            except Exception:
                elapsed += time.monotonic() - started
                error = traceback.format_exc(limit=20)
                if attempt < max_attempts:
                    failures.append("error")
                    if on_retry is not None:
                        on_retry(task, "error")
                    continue
                outcomes[key] = TrialOutcome(
                    key=key, status="error", error=error,
                    elapsed=elapsed, attempts=attempt, failures=failures,
                )
            else:
                elapsed += time.monotonic() - started
                outcomes[key] = TrialOutcome(
                    key=key, status="ok", payload=payload,
                    elapsed=elapsed, attempts=attempt, failures=failures,
                )
            break
        if on_final is not None:
            on_final(task, outcomes[key])
    return outcomes
