"""Batched trial dispatch: N seeds of one config per executor task.

With ``--batch`` the campaign runner groups pending trials that share a
configuration (same experiment, preset, scale and SATIN overrides) into
*super-tasks* of up to ``batch_size`` seeds.  A super-task travels through
the ordinary :class:`~repro.service.executors.Executor` interface as one
JSON-serialisable dict — every backend (inline/thread/fork/queue) executes
it with :func:`run_batch_trials`, which:

1. pre-advances the hot RNG streams of all member seeds in one
   vectorized pass per stream (:func:`repro.sim.batch.plan_blocks`);
2. runs each member under a :class:`~repro.sim.batch.ReplayPlan`, so
   every distribution draw is served from the precomputed blocks —
   bit-identical to the scalar engine by construction;
3. catches :class:`~repro.sim.batch.BatchDivergence` per member (a
   stream asked for entropy the replay cannot serve, e.g. a fault
   injector's ``randrange``) and *ejects* that seed: the member reruns on
   the pure scalar engine, and the ejection is recorded for the manifest.

Batching never changes results — member records, verdicts and the
manifest fingerprint are byte-identical to a scalar run — so it is safe
to flip on and off per invocation.  It is auto-disabled for fault plans
(chaos sweeps) and by the ``REPRO_NO_BATCH`` environment kill switch.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.digest import stable_digest
from repro.campaign.pool import TrialOutcome, resolve_function

#: Import path of the worker-side super-task function.
BATCH_TRIAL_FN = "repro.campaign.batch_runner:run_batch_trials"

#: Streams pre-advanced for every member seed, one vectorized pass each.
#: ``core{i}.perf`` / ``kprober2.jitter.{i}`` are expanded per core at
#: plan-build time; anything not listed is generated lazily in-stream
#: (still bit-exact), so this is a latency hint, not a correctness list.
HOT_STREAMS = ("prober.visibility", "figure4", "table2")
HOT_PER_CORE_STREAMS = ("core{i}.perf", "kprober2.jitter.{i}")

#: Uniforms pre-generated per (seed, stream) block.
PLAN_BLOCK_SIZE = 8192

#: Environment kill switch: any non-empty value forces the scalar engine.
NO_BATCH_ENV = "REPRO_NO_BATCH"

#: Test hook: force every replayed stream to trip BatchDivergence after
#: this many generated uniforms, exercising the ejection path end-to-end.
TRIP_ENV = "REPRO_BATCH_TRIP"


def batch_active(spec: Any) -> bool:
    """Whether this sweep runs through the batch dispatcher.

    Requires the spec to opt in (``batch=True``), no environment kill
    switch, and no fault plan — injected faults consume ``randrange``
    entropy mid-trial, so every seed would just eject; the scalar engine
    is the honest path there.
    """
    if not getattr(spec, "batch", False):
        return False
    if os.environ.get(NO_BATCH_ENV):
        return False
    if getattr(spec, "plan", None) is not None:
        return False
    return True


def group_tasks(
    pending: List[Dict[str, Any]],
    fn_path: str,
    batch_size: int,
) -> List[Dict[str, Any]]:
    """Group consecutive same-config trials into batch super-tasks.

    Grouping preserves task order (preset-major, then seed), so member
    finalisation — and therefore every store shard, meter tick and
    manifest row — happens in the same order a scalar run produces.
    """
    groups: List[Dict[str, Any]] = []
    run: List[Dict[str, Any]] = []

    def config_of(task: Dict[str, Any]) -> Tuple:
        return (
            task.get("experiment_id"),
            task.get("preset"),
            bool(task.get("full")),
            stable_digest(task.get("satin") or {}),
        )

    def flush() -> None:
        if not run:
            return
        groups.append(
            {
                "key": "batch:" + stable_digest([t["key"] for t in run], length=16),
                "kind": "batch",
                "fn": fn_path,
                "tasks": list(run),
            }
        )
        run.clear()

    current: Optional[Tuple] = None
    for task in pending:
        cfg = config_of(task)
        if cfg != current or len(run) >= batch_size:
            flush()
            current = cfg
        run.append(task)
    flush()
    return groups


def _member_streams(seeds: List[int], core_count: int) -> List[str]:
    names = list(HOT_STREAMS)
    for template in HOT_PER_CORE_STREAMS:
        names.extend(template.format(i=i) for i in range(core_count))
    return names


def run_batch_trials(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side super-task: run every member seed under stream replay.

    Returns a composite payload the supervisor splits back into per-trial
    outcomes.  A member that raises :class:`BatchDivergence` is rerun on
    the scalar engine (``mode: scalar_fallback``); any other exception
    becomes that member's error without sinking its siblings.
    """
    from repro.campaign.trials import build_trial_config
    from repro.sim.batch import BatchDivergence, ReplayPlan, plan_blocks, use_replay

    members: List[Dict[str, Any]] = task["tasks"]
    fn = resolve_function(task["fn"])
    trip_env = os.environ.get(TRIP_ENV)
    trip_after = int(trip_env) if trip_env else None

    seeds = [int(m["seed"]) for m in members]
    first = members[0]
    try:
        config = build_trial_config(
            seeds[0], preset=first.get("preset") or "juno_r1", satin=first.get("satin")
        )
        core_count = config.core_count
    except Exception:
        core_count = 0
    blocks = plan_blocks(seeds, _member_streams(seeds, core_count), PLAN_BLOCK_SIZE)

    out_members: List[Dict[str, Any]] = []
    batched = scalar_fallback = 0
    ejections: List[Dict[str, Any]] = []
    for member in members:
        started = time.monotonic()
        seed = int(member["seed"])
        plan = ReplayPlan(
            blocks={k: v for k, v in blocks.items() if k[0] == seed},
            trip_after=trip_after,
        )
        entry: Dict[str, Any] = {"key": member["key"], "seed": seed}
        try:
            with use_replay(plan):
                payload = fn(dict(member))
            entry.update(ok=True, mode="batched", payload=payload)
            batched += 1
        except BatchDivergence as exc:
            ejections.append({"seed": seed, "reason": str(exc)})
            try:
                payload = fn(dict(member))
                entry.update(ok=True, mode="scalar_fallback", payload=payload)
                scalar_fallback += 1
            except Exception as exc2:  # noqa: BLE001 - isolate members
                entry.update(ok=False, mode="scalar_fallback", error=repr(exc2))
        except Exception as exc:  # noqa: BLE001 - isolate members
            entry.update(ok=False, mode="batched", error=repr(exc))
        entry["elapsed"] = round(time.monotonic() - started, 6)
        out_members.append(entry)

    return {
        "kind": "batch",
        "members": out_members,
        "batched": batched,
        "scalar_fallback": scalar_fallback,
        "ejections": ejections,
    }


def split_outcome(
    super_task: Dict[str, Any], outcome: TrialOutcome
) -> List[Tuple[Dict[str, Any], TrialOutcome]]:
    """Explode a super-task outcome into per-member ``(task, outcome)``.

    A super-task that failed wholesale (worker crash, timeout after all
    attempts) fails every member with the same status, so quarantine
    entries look exactly like a scalar run's.
    """
    members: List[Dict[str, Any]] = super_task["tasks"]
    if not outcome.ok or not isinstance(outcome.payload, dict):
        return [
            (
                member,
                TrialOutcome(
                    key=member["key"],
                    status=outcome.status if not outcome.ok else "error",
                    error=outcome.error or "malformed batch payload",
                    elapsed=outcome.elapsed / max(1, len(members)),
                    attempts=outcome.attempts,
                    failures=list(outcome.failures),
                ),
            )
            for member in members
        ]
    by_key = {m["key"]: m for m in outcome.payload.get("members", [])}
    pairs: List[Tuple[Dict[str, Any], TrialOutcome]] = []
    for member in members:
        entry = by_key.get(member["key"])
        if entry is None:
            pairs.append(
                (
                    member,
                    TrialOutcome(
                        key=member["key"],
                        status="error",
                        error="batch payload missing member",
                        attempts=outcome.attempts,
                    ),
                )
            )
            continue
        if entry.get("ok"):
            pairs.append(
                (
                    member,
                    TrialOutcome(
                        key=member["key"],
                        status="ok",
                        payload=entry.get("payload"),
                        elapsed=float(entry.get("elapsed", 0.0)),
                        attempts=outcome.attempts,
                        failures=list(outcome.failures),
                    ),
                )
            )
        else:
            pairs.append(
                (
                    member,
                    TrialOutcome(
                        key=member["key"],
                        status="error",
                        error=entry.get("error"),
                        elapsed=float(entry.get("elapsed", 0.0)),
                        attempts=outcome.attempts,
                        failures=list(outcome.failures),
                    ),
                )
            )
    return pairs


def batch_stats(outcome: TrialOutcome) -> Dict[str, Any]:
    """The {batched, scalar_fallback, ejections} triple of one super-task."""
    if outcome.ok and isinstance(outcome.payload, dict):
        return {
            "batched": int(outcome.payload.get("batched", 0)),
            "scalar_fallback": int(outcome.payload.get("scalar_fallback", 0)),
            "ejections": list(outcome.payload.get("ejections", [])),
        }
    return {"batched": 0, "scalar_fallback": 0, "ejections": []}
