"""Campaign progress streamed to stderr: counts, throughput, ETA.

On a TTY the meter repaints one status line with carriage returns; on a
pipe (CI logs) it emits a full line at most every ``interval`` seconds so
logs stay readable.  All counters are driven by the supervisor, so the
meter needs no locking.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


def _fmt_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressMeter:
    """Trials done/failed/cached, trials-per-second, and ETA."""

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        interval: float = 0.5,
        label: str = "campaign",
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.interval = interval
        self.label = label
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.retries = 0
        self._started = time.monotonic()
        self._last_emit = 0.0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    # ------------------------------------------------------------------

    @property
    def completed(self) -> int:
        return self.done + self.failed + self.cached

    def note_cached(self, count: int = 1) -> None:
        self.cached += count
        self._maybe_emit()

    def note_done(self) -> None:
        self.done += 1
        self._maybe_emit()

    def note_failed(self) -> None:
        self.failed += 1
        self._maybe_emit()

    def note_retry(self) -> None:
        self.retries += 1
        self._maybe_emit()

    # ------------------------------------------------------------------

    def _rate(self) -> float:
        elapsed = time.monotonic() - self._started
        ran = self.done + self.failed  # cache hits are free, not throughput
        return ran / elapsed if elapsed > 0 else 0.0

    def render(self) -> str:
        rate = self._rate()
        remaining = self.total - self.completed
        eta = _fmt_eta(remaining / rate) if rate > 0 else "?"
        parts = [
            f"[{self.label}] {self.completed}/{self.total}",
            f"{self.done} done",
            f"{self.failed} failed",
            f"{self.cached} cached",
        ]
        if self.retries:
            parts.append(f"{self.retries} retried")
        parts.append(f"{rate:.2f} trials/s")
        parts.append(f"ETA {eta}")
        return " | ".join(parts)

    def _maybe_emit(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        if self._tty:
            self.stream.write("\r" + self.render().ljust(79))
        else:
            self.stream.write(self.render() + "\n")
        self.stream.flush()

    def finish(self) -> None:
        """Emit the final tally unconditionally."""
        if not self.enabled:
            return
        self._maybe_emit(force=True)
        if self._tty:
            self.stream.write("\n")
            self.stream.flush()
