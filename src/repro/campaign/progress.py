"""Campaign progress streamed to stderr: counts, throughput, ETA.

The meter owns no counters of its own: every number it prints is read
from a :class:`~repro.obs.metrics.MetricsRegistry` (the campaign
supervisor's), so the progress line, the final manifest, and ``repro
metrics`` can never disagree.

Three output modes:

* **TTY** — repaint one status line with carriage returns;
* **non-TTY** (CI logs, pipes) — a full line at most every ``interval``
  seconds so logs stay readable;
* **quiet** — nothing until :meth:`finish`, which emits the final tally
  once (pass ``enabled=False`` to silence even that).

All counters are driven by the supervisor, so the meter needs no locking.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.obs.metrics import MetricsRegistry

#: Supervisor metric names the meter reads (and increments).
DONE = "campaign.trials_done"
FAILED = "campaign.trials_failed"
CACHED = "campaign.trials_cached"
RETRIES = "campaign.trial_retries"


def _fmt_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressMeter:
    """Trials done/failed/cached, trials-per-second, and ETA."""

    def __init__(
        self,
        total: int,
        registry: Optional[MetricsRegistry] = None,
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        quiet: bool = False,
        interval: float = 0.5,
        label: str = "campaign",
    ) -> None:
        self.total = total
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.quiet = quiet
        self.interval = interval
        self.label = label
        self._started = time.monotonic()
        self._last_emit = 0.0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    # ------------------------------------------------------------------
    # Registry-backed counters
    # ------------------------------------------------------------------

    @property
    def done(self) -> int:
        return self.registry.counter(DONE).value

    @property
    def failed(self) -> int:
        return self.registry.counter(FAILED).value

    @property
    def cached(self) -> int:
        return self.registry.counter(CACHED).value

    @property
    def retries(self) -> int:
        return self.registry.counter(RETRIES).value

    @property
    def completed(self) -> int:
        return self.done + self.failed + self.cached

    def note_cached(self, count: int = 1) -> None:
        self.registry.counter(CACHED).inc(count)
        self._maybe_emit()

    def note_done(self) -> None:
        self.registry.counter(DONE).inc()
        self._maybe_emit()

    def note_failed(self) -> None:
        self.registry.counter(FAILED).inc()
        self._maybe_emit()

    def note_retry(self) -> None:
        self.registry.counter(RETRIES).inc()
        self._maybe_emit()

    # ------------------------------------------------------------------

    def _rate(self) -> float:
        elapsed = time.monotonic() - self._started
        ran = self.done + self.failed  # cache hits are free, not throughput
        return ran / elapsed if elapsed > 0 else 0.0

    def render(self) -> str:
        rate = self._rate()
        remaining = self.total - self.completed
        eta = _fmt_eta(remaining / rate) if rate > 0 else "?"
        parts = [
            f"[{self.label}] {self.completed}/{self.total}",
            f"{self.done} done",
            f"{self.failed} failed",
            f"{self.cached} cached",
        ]
        if self.retries:
            parts.append(f"{self.retries} retried")
        parts.append(f"{rate:.2f} trials/s")
        parts.append(f"ETA {eta}")
        return " | ".join(parts)

    def _maybe_emit(self, force: bool = False) -> None:
        if not self.enabled or (self.quiet and not force):
            return
        now = time.monotonic()
        if not force and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        if self._tty and not self.quiet:
            self.stream.write("\r" + self.render().ljust(79))
        else:
            self.stream.write(self.render() + "\n")
        self.stream.flush()

    def finish(self) -> None:
        """Emit the final tally unconditionally (even in quiet mode)."""
        if not self.enabled:
            return
        self._maybe_emit(force=True)
        if self._tty and not self.quiet:
            self.stream.write("\n")
            self.stream.flush()
