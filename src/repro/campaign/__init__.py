"""Parallel Monte-Carlo campaign engine with a content-addressed cache.

Fans a grid of platform presets x seed ranges out across a worker pool
(:mod:`repro.campaign.pool`), memoises completed trials in JSONL shards
under ``.repro-cache/`` (:mod:`repro.campaign.store`), and merges the
results through :mod:`repro.analysis.stats` into aggregate
paper-vs-measured tables (:mod:`repro.campaign.runner`).

Entry points::

    python -m repro campaign E9 --seeds 64 --jobs 4 --resume

    from repro.campaign import CampaignSpec, run_campaign
    result = run_campaign(CampaignSpec("E9", seeds=range(64), jobs=4))
"""

from repro.campaign.digest import (
    CODE_VERSION,
    canonical_form,
    stable_digest,
    trial_key,
)
from repro.campaign.pool import TrialOutcome, run_tasks
from repro.campaign.progress import ProgressMeter
from repro.campaign.runner import (
    CampaignResult,
    CampaignSpec,
    SweepRun,
    aggregate_records,
    run_campaign,
    run_sweep,
)
from repro.campaign.store import ResultStore

__all__ = [
    "CODE_VERSION",
    "CampaignResult",
    "CampaignSpec",
    "ProgressMeter",
    "ResultStore",
    "SweepRun",
    "TrialOutcome",
    "aggregate_records",
    "canonical_form",
    "run_campaign",
    "run_sweep",
    "run_tasks",
    "stable_digest",
    "trial_key",
]
