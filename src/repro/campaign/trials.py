"""Worker-side trial execution: one seeded experiment -> one JSON record.

This module is addressed by its import path (``repro.campaign.trials:
run_experiment_trial``) so the pool can resolve it inside a worker
process.  A trial is fully described by its task dict::

    {"key": ..., "experiment_id": "E9", "seed": 17, "full": false,
     "preset": "juno_r1", "satin": {"tgoal": 76.0}}

and returns a JSON-serialisable payload: the experiment's rendered table,
its paper-vs-measured comparison rows, and the scalar subset of its raw
values.  Workers never touch the result store — records flow back to the
supervisor over the pool's queue.

Trials lean on two process-scoped content caches that are invisible to
simulated state: :data:`repro.kernel.image._CONTENT_CACHE` (generated
kernel image bytes, keyed by image seed and layout) and
:data:`repro.secure.boot._DIGEST_CACHE` (trusted-boot digest tables,
keyed by image fingerprint and partition table).  On fork-based pools the
supervisor's warm caches are inherited by every worker for free; spawned
workers warm their own on the first trial.  Each cache hit still verifies
a sentinel span against the live image, and setting ``REPRO_NO_BOOT_CACHE``
disables the digest cache entirely — results are byte-identical either
way, only wall time changes.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.config import MachineConfig, SatinConfig, preset_config
from repro.errors import CampaignError

#: Experiments whose drivers accept a prebuilt stack, i.e. the ones a
#: campaign may run on non-default presets / SATIN variants.
STACK_AWARE_EXPERIMENTS = ("E9",)

#: The preset every experiment driver builds internally.
DEFAULT_PRESET = "juno_r1"


def jsonable_scalar(value: Any) -> bool:
    """True for values that survive a JSONL round trip unchanged."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return True
    return isinstance(value, float) and math.isfinite(value)


def scalar_values(values: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON-safe subset of an ``ExperimentResult.values`` dict."""
    return {k: v for k, v in values.items() if jsonable_scalar(v)}


def sanitize_comparisons(comparisons) -> list:
    out = []
    for row in comparisons:
        out.append(
            {
                "quantity": str(row.get("quantity")),
                "paper": row.get("paper") if jsonable_scalar(row.get("paper")) else str(row.get("paper")),
                "measured": row.get("measured") if jsonable_scalar(row.get("measured")) else str(row.get("measured")),
            }
        )
    return out


def build_trial_config(
    seed: int,
    preset: str = DEFAULT_PRESET,
    satin: Optional[Dict[str, Any]] = None,
) -> MachineConfig:
    """The MachineConfig one trial runs under (also what gets digested)."""
    config = preset_config(preset, seed=seed)
    if satin:
        config.satin = SatinConfig(**satin)
    return config


def run_experiment_trial(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one experiment trial and distil a serialisable record.

    The whole trial runs under a scoped
    :class:`~repro.obs.metrics.MetricsRegistry` — every machine the
    experiment builds adopts it — and the registry's snapshot rides along
    in the payload.  All metered quantities are simulated-time or count
    based, so the snapshot is a pure function of the task: the campaign
    manifest can merge shard snapshots into a byte-reproducible rollup.
    """
    from repro.experiments.report import run_experiment, spec_by_id
    from repro.obs.metrics import use_registry

    experiment_id = task["experiment_id"]
    seed = task["seed"]
    full = bool(task.get("full", False))
    preset = task.get("preset", DEFAULT_PRESET)
    satin = task.get("satin") or None

    with use_registry() as registry:
        if preset == DEFAULT_PRESET and not satin:
            result = run_experiment(experiment_id, seed=seed, full=full)
        else:
            # Variant trials need a driver that accepts a prebuilt stack;
            # everything else hard-codes its own juno_r1 build.
            if experiment_id.upper() not in STACK_AWARE_EXPERIMENTS:
                raise CampaignError(
                    f"experiment {experiment_id} cannot run config variants "
                    f"(stack-aware: {', '.join(STACK_AWARE_EXPERIMENTS)})"
                )
            from repro.experiments.common import build_stack
            from repro.experiments.detection import run_detection_experiment

            spec = spec_by_id(experiment_id)
            config = build_trial_config(seed, preset=preset, satin=satin)
            stack = build_stack(
                machine_config=config, with_satin=True, with_evader=True
            )
            passes = 10 if full else 2
            result = run_detection_experiment(seed=seed, passes=passes, stack=stack)
            result.title = f"{spec.title} [{preset}]"

    return {
        "experiment_id": result.experiment_id,
        "seed": seed,
        "full": full,
        "preset": preset,
        "rendered": result.rendered,
        "comparisons": sanitize_comparisons(result.comparisons),
        "values": scalar_values(result.values),
        "metrics": registry.snapshot(),
    }
