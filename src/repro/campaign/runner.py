"""Campaign orchestration: grid expansion, cache consult, fan-out, merge.

A *campaign* is a grid of platform presets (and optional SATIN overrides)
crossed with a seed range, all running one experiment.  The runner:

1. expands the grid into trial tasks in a deterministic order
   (preset-major, then seed) and computes each trial's content address;
2. consults the :class:`~repro.campaign.store.ResultStore` — with
   ``resume=True`` completed trials are served from cache;
3. fans the misses out across the :mod:`~repro.campaign.pool` with
   per-trial timeout, crash isolation and bounded retry;
4. merges all records through :mod:`repro.analysis.stats` into
   paper-vs-measured aggregate tables.

Aggregation iterates records in task order, never completion order, so a
parallel campaign renders byte-identical tables to a serial (``jobs=0``)
run over the same seed set.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO, Union

from repro.analysis.stats import Summary, mean_ci
from repro.analysis.tables import render_table
from repro.campaign import batch_runner
from repro.campaign.digest import CODE_VERSION, stable_digest, trial_key
from repro.campaign.pool import DEFAULT_MAX_ATTEMPTS, TrialOutcome
from repro.campaign.progress import ProgressMeter
from repro.campaign.store import ResultStore
from repro.campaign.trials import DEFAULT_PRESET, build_trial_config
from repro.errors import CampaignError
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry

#: Type of the optional sweep observer: ``observer(event, info)`` fires on
#: "cached", "done", "failed", "retry" and "cancelled" — the service uses
#: it to surface live per-job progress without touching the meter.
Observer = Callable[[str, Dict[str, Any]], None]

#: Import path of the worker-side trial function.
TRIAL_FN = "repro.campaign.trials:run_experiment_trial"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Batch dispatch must beat replaying its members through the scalar
#: engine; warn when the super-task wall exceeds the members' summed
#: wall by this factor plus a small absolute noise floor.
_BATCH_OVERHEAD_TOLERANCE = 1.10
_BATCH_OVERHEAD_FLOOR_SECONDS = 0.25

#: One warning per process — a 64-group campaign must not print 64 lines.
_batch_underperformance_warned = False


def _note_batch_underperformance(batch_info: Dict[str, Any]) -> None:
    """Record (and warn once about) batch dispatch losing to scalar.

    ``member_seconds`` is the batch runner's own scalar estimate: each
    member trial's wall time as measured inside the super-task.  When the
    dispatch wall exceeds that estimate beyond noise, users are silently
    paying for ``--batch`` — say so once, and leave a note in the
    manifest's ``batch`` section (outside the fingerprint view).
    """
    global _batch_underperformance_warned
    dispatch = batch_info.get("dispatch_seconds", 0.0)
    members = batch_info.get("member_seconds", 0.0)
    if not batch_info.get("batched"):
        return
    threshold = members * _BATCH_OVERHEAD_TOLERANCE + _BATCH_OVERHEAD_FLOOR_SECONDS
    if dispatch <= threshold:
        return
    ratio = dispatch / members if members > 0 else float("inf")
    batch_info["underperformance"] = {
        "dispatch_seconds": round(dispatch, 3),
        "member_seconds": round(members, 3),
        "overhead_ratio": round(ratio, 3),
    }
    if not _batch_underperformance_warned:
        _batch_underperformance_warned = True
        print(
            f"warning: --batch dispatch took {dispatch:.1f}s for trials its "
            f"own members report as {members:.1f}s ({ratio:.2f}x) — the "
            "scalar path would likely be faster for this workload",
            file=sys.stderr,
        )


@dataclass
class CampaignSpec:
    """Everything that defines a campaign run."""

    experiment_id: str
    seeds: Sequence[int]
    full: bool = False
    presets: Sequence[str] = (DEFAULT_PRESET,)
    satin: Optional[Dict[str, Any]] = None
    jobs: int = 1
    timeout: Optional[float] = None
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    cache_dir: str = DEFAULT_CACHE_DIR
    resume: bool = False
    #: executor backend: "auto" (jobs==0 -> inline, else fork), "inline",
    #: "thread", "fork", or "queue" (needs ``queue_dir``).  Deliberately
    #: excluded from ``campaign_id`` — the substrate never changes results.
    backend: str = "auto"
    queue_dir: Optional[str] = None
    #: local drain threads to spawn for the queue backend (0 = external
    #: ``repro worker`` processes own the draining).
    queue_workers: int = 0
    #: run same-config seeds as vectorized batch groups.  Like ``backend``
    #: it is excluded from ``campaign_id``: batching is bit-exact, so the
    #: cache and manifest fingerprint are identical either way.
    batch: bool = False
    #: max member trials per batch super-task.
    batch_size: int = 16
    #: sequential-CI adaptive dispatch: stop consuming seeds per preset
    #: once the 95% CI of the headline quantity is narrower than
    #: ``ci_width`` (see :mod:`repro.analysis.planning.planner`).  Like
    #: ``backend``/``batch`` these knobs are excluded from
    #: ``campaign_id`` — an adaptive run shares the fixed run's cache
    #: (it consumes a prefix of the same seed stream), and its manifest
    #: covers exactly the consumed trials.
    adaptive: bool = False
    #: target 95% CI width; required when ``adaptive`` is set.
    ci_width: Optional[float] = None
    #: comparison quantity the CI tracks (default: first quantity with
    #: nonzero spread after the first round).
    ci_quantity: Optional[str] = None
    #: seeds dispatched per preset before the first stopping check.
    min_seeds: int = 8
    #: seeds added per preset per later round (doubled for presets the
    #: solver flags as contested).
    round_size: int = 4

    def __post_init__(self) -> None:
        from repro.service.executors import BACKENDS

        if not self.seeds:
            raise CampaignError("campaign needs at least one seed")
        if self.batch_size < 1:
            raise CampaignError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.adaptive:
            if self.ci_width is None or self.ci_width <= 0:
                raise CampaignError("--adaptive needs --ci-width > 0")
            if self.min_seeds < 2:
                raise CampaignError("adaptive min_seeds must be >= 2")
            if self.round_size < 1:
                raise CampaignError("adaptive round_size must be >= 1")
        if not self.presets:
            raise CampaignError("campaign needs at least one preset")
        if len(set(self.seeds)) != len(self.seeds):
            raise CampaignError("campaign seeds must be unique")
        if self.backend not in ("auto",) + BACKENDS:
            raise CampaignError(
                f"unknown backend {self.backend!r} "
                f"(choose from auto, {', '.join(BACKENDS)})"
            )
        if self.backend == "queue" and not self.queue_dir:
            raise CampaignError("backend 'queue' needs queue_dir")

    def campaign_id(self) -> str:
        """Cache directory name: human-readable prefix + grid digest.

        Seeds are deliberately excluded so campaigns over different seed
        ranges of the same grid share one cache.
        """
        digest = stable_digest(
            {
                "experiment_id": self.experiment_id.upper(),
                "full": self.full,
                "presets": list(self.presets),
                "satin": self.satin or {},
                "code": CODE_VERSION,
            },
            length=12,
        )
        return f"{self.experiment_id.upper()}-{digest}"

    def trial_tasks(self) -> List[Dict[str, Any]]:
        """The grid expanded to task dicts, preset-major then seed order."""
        tasks: List[Dict[str, Any]] = []
        for preset in self.presets:
            for seed in self.seeds:
                config = build_trial_config(int(seed), preset=preset, satin=self.satin)
                tasks.append(
                    {
                        "key": trial_key(
                            self.experiment_id,
                            int(seed),
                            self.full,
                            config.config_digest(),
                        ),
                        "experiment_id": self.experiment_id.upper(),
                        "seed": int(seed),
                        "full": self.full,
                        "preset": preset,
                        "satin": dict(self.satin) if self.satin else None,
                    }
                )
        return tasks


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    spec: CampaignSpec
    total: int
    records: List[Dict[str, Any]]  # ok records, in task order
    cached: int
    ran: int
    quarantined: List[Dict[str, Any]]
    rendered: str
    #: path of the run manifest written beside the result cache.
    manifest_path: Optional[str] = None
    #: True when the run was interrupted (SIGINT or a service cancel);
    #: the manifest is partial and marked ``cancelled: true``.
    cancelled: bool = False

    @property
    def cache_hit_ratio(self) -> float:
        return self.cached / self.total if self.total else 0.0


def make_record(task: Dict[str, Any], outcome: TrialOutcome) -> Dict[str, Any]:
    """The JSONL record persisted for one completed trial."""
    return {
        "key": task["key"],
        "status": "ok",
        "experiment_id": task["experiment_id"],
        "seed": task["seed"],
        "preset": task["preset"],
        "full": task["full"],
        "elapsed": round(outcome.elapsed, 6),
        "attempts": outcome.attempts,
        "payload": outcome.payload,
    }


def _fmt(value: Any) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"


def aggregate_records(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Merge trial records into per-preset paper-vs-measured tables.

    For every comparison quantity the per-seed ``measured`` values become
    a sample set summarised by :class:`repro.analysis.stats.Summary` plus
    a 95% confidence interval — the Monte-Carlo analogue of the single
    measured column ``experiments/report.py`` prints.
    """
    sections: List[str] = []
    by_preset: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        by_preset.setdefault(record["preset"], []).append(record)

    for preset, group in by_preset.items():
        quantities: List[str] = []
        paper: Dict[str, Any] = {}
        samples: Dict[str, List[float]] = {}
        for record in group:
            for row in record["payload"].get("comparisons", []):
                q = row["quantity"]
                if q not in samples:
                    quantities.append(q)
                    samples[q] = []
                    paper[q] = row["paper"]
                measured = row["measured"]
                if isinstance(measured, (int, float)) and not isinstance(measured, bool):
                    samples[q].append(float(measured))
        rows = []
        for q in quantities:
            values = samples[q]
            if not values:
                rows.append([q, _fmt(paper[q]), "n/a", "n/a", "n/a", "n/a", "0"])
                continue
            summary = Summary.of(values)
            lo, hi = mean_ci(values)
            rows.append(
                [
                    q,
                    _fmt(paper[q]),
                    _fmt(summary.average),
                    f"[{_fmt(lo)}, {_fmt(hi)}]",
                    _fmt(summary.minimum),
                    _fmt(summary.maximum),
                    str(summary.count),
                ]
            )
        sections.append(
            render_table(
                ("quantity", "paper", "mean", "95% ci", "min", "max", "n"),
                rows,
                title=f"preset {preset} — {len(group)} trials",
            )
        )
    return sections


def render_campaign(
    spec: CampaignSpec,
    records: Sequence[Dict[str, Any]],
    cached: int,
    ran: int,
    quarantined: Sequence[Dict[str, Any]],
) -> str:
    total = len(spec.seeds) * len(spec.presets)
    lines = [
        f"# campaign {spec.experiment_id.upper()} — "
        f"{len(spec.seeds)} seeds x {len(spec.presets)} preset(s), "
        f"scale={'full' if spec.full else 'fast'}",
        f"trials: {total} total, {ran} ran, {cached} cached, "
        f"{len(quarantined)} quarantined",
        "",
    ]
    lines.extend(aggregate_records(records))
    if quarantined:
        lines.append("")
        lines.append("quarantined trials (failed every attempt):")
        for item in quarantined:
            failures = "+".join(item.get("failures", []) + [item["status"]])
            lines.append(
                f"  - seed={item['seed']} preset={item['preset']} "
                f"[{failures}] after {item['attempts']} attempt(s)"
            )
    return "\n".join(lines)


@dataclass
class SweepRun:
    """What the backend-agnostic supervision phase produced.

    Shared by campaigns and chaos sweeps: everything up to "ok records in
    task order" is identical; only rendering and manifest decoration
    differ between the two.
    """

    tasks: List[Dict[str, Any]]
    store: ResultStore
    records: List[Dict[str, Any]]
    cached: int
    ran: int
    quarantined: List[Dict[str, Any]]
    supervisor: MetricsRegistry
    cancelled: bool
    started_wall: float
    #: batch dispatch rollup ({enabled, groups, batched, scalar_fallback,
    #: ejections}) or None when the sweep ran scalar trials.
    batch: Optional[Dict[str, Any]] = None
    #: deterministic store-health summary (:meth:`ResultStore.health`).
    store_health: Optional[Dict[str, Any]] = None

    @property
    def wall_seconds(self) -> float:
        return time.monotonic() - self.started_wall


def run_sweep(
    spec,
    trial_fn: str,
    stream: Optional[TextIO] = None,
    progress: Union[bool, str] = True,
    observer: Optional[Observer] = None,
    cancel_event: Optional[threading.Event] = None,
) -> SweepRun:
    """Cache consult + executor fan-out + store writeback, backend-agnostic.

    ``spec`` is any campaign-shaped spec (``trial_tasks``/``campaign_id``/
    ``backend``/``jobs``/...).  On cancellation (``cancel_event`` set or
    ``KeyboardInterrupt``) the pool is drained, completed records are kept,
    and the returned :class:`SweepRun` carries ``cancelled=True`` — callers
    still render and write a partial manifest.
    """
    from repro.service.executors import execute_tasks, make_executor

    started_wall = time.monotonic()
    tasks = spec.trial_tasks()
    store = ResultStore(spec.cache_dir, spec.campaign_id())
    # Index-backed open: a warm --resume seeks straight to its cache hits
    # instead of streaming every shard (store.full_scans stays 0).
    store.ensure_index()

    cached_records: Dict[str, Dict[str, Any]] = {}
    pending: List[Dict[str, Any]] = []
    for task in tasks:
        record = store.ok_record(task["key"]) if spec.resume else None
        if record is not None:
            cached_records[task["key"]] = record
        else:
            pending.append(task)

    supervisor = MetricsRegistry()
    meter = ProgressMeter(
        total=len(tasks),
        registry=supervisor,
        stream=stream,
        enabled=progress is not False,
        quiet=progress == "quiet",
    )

    def notify(event: str, info: Dict[str, Any]) -> None:
        if observer is not None:
            observer(event, info)

    if cached_records:
        meter.note_cached(len(cached_records))
        notify("cached", {"count": len(cached_records)})

    quarantined: List[Dict[str, Any]] = []
    ok_records: Dict[str, Dict[str, Any]] = {}

    def finalize_member(task: Dict[str, Any], outcome: TrialOutcome) -> None:
        supervisor.histogram("campaign.trial_wall_seconds").observe(outcome.elapsed)
        supervisor.histogram("campaign.trial_attempts").observe(float(outcome.attempts))
        if outcome.ok:
            record = make_record(task, outcome)
            store.put(record)
            ok_records[task["key"]] = record
            meter.note_done()
            notify("done", {"key": task["key"], "seed": task.get("seed")})
        else:
            entry = {
                "key": task["key"],
                "status": outcome.status,
                "seed": task["seed"],
                "preset": task["preset"],
                "attempts": outcome.attempts,
                "failures": outcome.failures,
                "error": outcome.error,
            }
            store.quarantine(entry)
            quarantined.append(entry)
            meter.note_failed()
            notify("failed", {"key": task["key"], "status": outcome.status})

    batching = batch_runner.batch_active(spec)
    batch_info: Optional[Dict[str, Any]] = None
    if batching:
        dispatch_tasks = batch_runner.group_tasks(
            pending, trial_fn, spec.batch_size
        )
        dispatch_fn = batch_runner.BATCH_TRIAL_FN
        batch_info = {
            "enabled": True,
            "groups": len(dispatch_tasks),
            "batched": 0,
            "scalar_fallback": 0,
            "ejections": [],
            "dispatch_seconds": 0.0,
            "member_seconds": 0.0,
        }

        def on_final(task: Dict[str, Any], outcome: TrialOutcome) -> None:
            stats = batch_runner.batch_stats(outcome)
            batch_info["batched"] += stats["batched"]
            batch_info["scalar_fallback"] += stats["scalar_fallback"]
            batch_info["ejections"].extend(stats["ejections"])
            batch_info["dispatch_seconds"] += outcome.elapsed
            supervisor.counter("campaign.trials_batched").inc(stats["batched"])
            supervisor.counter("campaign.trials_scalar_fallback").inc(
                stats["scalar_fallback"]
            )
            for member, member_outcome in batch_runner.split_outcome(task, outcome):
                batch_info["member_seconds"] += member_outcome.elapsed
                finalize_member(member, member_outcome)

    else:
        dispatch_tasks = pending
        dispatch_fn = trial_fn
        on_final = finalize_member

    def on_retry(task: Dict[str, Any], kind: str) -> None:
        meter.note_retry()
        notify("retry", {"key": task["key"], "kind": kind})

    executor = make_executor(
        backend=spec.backend,
        jobs=spec.jobs,
        timeout=spec.timeout,
        metrics=supervisor,
        queue_dir=getattr(spec, "queue_dir", None),
        queue_workers=getattr(spec, "queue_workers", 0),
    )
    outcomes, cancelled = execute_tasks(
        dispatch_tasks,
        dispatch_fn,
        executor,
        max_attempts=spec.max_attempts,
        on_final=on_final,
        on_retry=on_retry,
        metrics=supervisor,
        cancel_event=cancel_event,
    )
    meter.finish()
    if cancelled:
        supervisor.counter("campaign.cancelled").inc()
        notify("cancelled", {"completed": len(outcomes), "pending": len(pending)})
    if batch_info is not None:
        _note_batch_underperformance(batch_info)

    records: List[Dict[str, Any]] = []
    for task in tasks:  # task order => deterministic aggregation
        if task["key"] in cached_records:
            records.append(cached_records[task["key"]])
        elif task["key"] in ok_records:
            records.append(ok_records[task["key"]])

    # Persist the key index so the next --resume is O(1) per key, and
    # surface store health (truncation, reindexing, lookup counters) in
    # the supervisor registry + the manifest's store section.
    store.save_index()
    store_health = store.health()
    if store_health["truncated_records"]:
        supervisor.counter("campaign.store_corrupt_lines").inc(
            store_health["truncated_records"]
        )
    if store.lazy_reindexed:
        supervisor.counter("campaign.store_lazy_reindexed").inc(
            store.lazy_reindexed
        )
    if store.full_scans:
        supervisor.counter("campaign.store_full_scans").inc(store.full_scans)
    if store.record_reads:
        supervisor.counter("campaign.store_record_reads").inc(store.record_reads)

    return SweepRun(
        tasks=tasks,
        store=store,
        records=records,
        cached=len(cached_records),
        ran=len(pending),
        quarantined=quarantined,
        supervisor=supervisor,
        cancelled=cancelled,
        started_wall=started_wall,
        batch=batch_info,
        store_health=store_health,
    )


def run_campaign(
    spec: CampaignSpec,
    stream: Optional[TextIO] = None,
    progress: Union[bool, str] = True,
    trial_fn: str = TRIAL_FN,
    observer: Optional[Observer] = None,
    cancel_event: Optional[threading.Event] = None,
) -> CampaignResult:
    """Execute a campaign end-to-end; never aborts on individual trials.

    ``trial_fn`` is the worker-side function's import path; tests override
    it to inject hanging/crashing trials against a real campaign.
    ``progress`` is ``True`` (live meter), ``False`` (silent), or
    ``"quiet"`` (one final tally line).  A ``KeyboardInterrupt`` (or a set
    ``cancel_event``) cancels cleanly: the pool is drained, completed
    shards stay flushed, and a partial manifest marked ``cancelled: true``
    is written before returning.

    With ``spec.adaptive`` set, dispatch is handed to the sequential-CI
    planner (lazy import: the planner itself drives rounds through
    :func:`run_sweep`), which stops consuming seeds per preset the
    moment the target CI width is met.
    """
    if getattr(spec, "adaptive", False):
        from repro.analysis.planning.planner import run_adaptive_campaign

        return run_adaptive_campaign(
            spec,
            stream=stream,
            progress=progress,
            trial_fn=trial_fn,
            observer=observer,
            cancel_event=cancel_event,
        )
    sweep = run_sweep(
        spec, trial_fn,
        stream=stream, progress=progress,
        observer=observer, cancel_event=cancel_event,
    )
    rendered = render_campaign(
        spec, sweep.records,
        cached=sweep.cached, ran=sweep.ran, quarantined=sweep.quarantined,
    )
    if sweep.cancelled:
        rendered = (
            f"!! campaign cancelled — partial results "
            f"({len(sweep.records)}/{len(sweep.tasks)} trials)\n" + rendered
        )
    result = CampaignResult(
        spec=spec,
        total=len(sweep.tasks),
        records=sweep.records,
        cached=sweep.cached,
        ran=sweep.ran,
        quarantined=sweep.quarantined,
        rendered=rendered,
        cancelled=sweep.cancelled,
    )
    manifest = build_manifest(
        spec,
        result,
        wall_seconds=sweep.wall_seconds,
        supervisor_snapshot=sweep.supervisor.snapshot(),
        cancelled=sweep.cancelled,
        batch=sweep.batch,
        store_health=sweep.store_health,
    )
    result.manifest_path = write_manifest(sweep.store.directory, manifest)
    return result
