"""Stable content digests for configurations and campaign trials.

A campaign's result cache is *content-addressed*: a trial's cache key is a
digest of everything that determines its outcome — the experiment id, the
seed, the machine/SATIN configuration (distribution parameters included),
the fast/full scale, and a code-version tag bumped whenever trial
semantics change.  Two runs that would produce the same record therefore
hash to the same key, and nothing else does.

Canonicalisation rules (``canonical_form``):

* dataclasses  -> ``{"__dataclass__": ClassName, <fields sorted by name>}``
* distributions (and other plain objects with a ``__dict__`` of simple
  values) -> ``{"__class__": ClassName, <attributes sorted by name>}``
* dicts -> keys stringified and sorted; lists/tuples -> lists
* floats are emitted through ``repr`` so the digest is decimal-exact and
  independent of JSON float formatting quirks.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict

from repro.errors import CampaignError

#: Bump when the meaning of a trial record changes (new fields computed
#: differently, experiment semantics altered, ...).  Invalidates every
#: cached trial, which is exactly what a semantic change requires.
CODE_VERSION = "campaign-v2"  # v2: trial payloads carry a metrics snapshot


def canonical_form(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable structure with a stable layout."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return {"__float__": repr(obj)}
    if isinstance(obj, (list, tuple)):
        return [canonical_form(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): canonical_form(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body: Dict[str, Any] = {"__dataclass__": type(obj).__name__}
        for field in sorted(dataclasses.fields(obj), key=lambda f: f.name):
            body[field.name] = canonical_form(getattr(obj, field.name))
        return body
    if hasattr(obj, "__dict__"):
        body = {"__class__": type(obj).__name__}
        for name, value in sorted(vars(obj).items()):
            body[name] = canonical_form(value)
        return body
    raise CampaignError(f"cannot canonicalise {type(obj).__name__!r} for digesting")


def stable_digest(obj: Any, length: int = 16) -> str:
    """Hex digest of ``obj``'s canonical form (sha256, truncated)."""
    blob = json.dumps(canonical_form(obj), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return digest[:length] if length else digest


def trial_key(
    experiment_id: str,
    seed: int,
    full: bool,
    config_digest: str,
    code_version: str = CODE_VERSION,
) -> str:
    """The content address of one trial."""
    return stable_digest(
        {
            "experiment_id": experiment_id.upper(),
            "seed": seed,
            "full": full,
            "config": config_digest,
            "code": code_version,
        }
    )
