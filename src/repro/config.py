"""Configuration dataclasses and the calibrated Juno r1 preset.

Every timing parameter in this file is taken from, or derived from, a number
the paper reports (see DESIGN.md section 5).  The defaults reproduce the
paper's ARM Juno r1 setup: a big.LITTLE processor with four Cortex-A53
"LITTLE" cores and two Cortex-A57 "big" cores, an ARM-Trusted-Firmware-style
secure monitor, and an lsk-4.4 rich OS whose static kernel is 11,916,240
bytes across 19 System.map sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.distributions import (
    BoundedPareto,
    Distribution,
    LogNormalJitter,
    SpikeMixture,
    Uniform,
)

# ---------------------------------------------------------------------------
# Paper constants (Section IV / VI)
# ---------------------------------------------------------------------------

#: Static kernel size measured on the board (Section IV-C).
PAPER_KERNEL_SIZE = 11_916_240

#: Number of System.map-derived introspection areas (Section VI-A2).
PAPER_AREA_COUNT = 19

#: Largest / smallest area sizes (Section VI-A2).
PAPER_LARGEST_AREA = 876_616
PAPER_SMALLEST_AREA = 431_360

#: Race-condition bound computed in Section IV-C: bytes the checker can
#: scan before a worst-case TZ-Evader finishes hiding.
PAPER_S_BOUND = 1_218_351

#: Bytes a persistent GETTID syscall-table hijack must restore (Sec. IV-A2).
PAPER_TRACE_BYTES = 8

#: KProber-II probe loop sleep (Section IV-A1).
PAPER_TSLEEP = 2e-4

#: Worst-case probing threshold observed (Section IV-B2 / VI-B1).
PAPER_THRESHOLD_WORST = 1.8e-3

#: Area index holding the hijacked system call handler (Section VI-B1).
PAPER_HIJACKED_AREA = 14


# ---------------------------------------------------------------------------
# Per-cluster timing models
# ---------------------------------------------------------------------------


@dataclass
class ClusterTiming:
    """Calibrated per-core timing model for one big.LITTLE cluster.

    All times in seconds.  Distribution parameters reproduce the avg/max/min
    cells of Table I and the delays in Sections IV-B1/IV-B2.
    """

    name: str
    #: secure-world per-byte direct-hash cost (Table I, "Hash 1-Byte").
    hash_byte: Distribution = field(default_factory=lambda: LogNormalJitter(1e-8, 0.02))
    #: secure-world per-byte snapshot-then-hash cost (Table I).
    snapshot_byte: Distribution = field(default_factory=lambda: LogNormalJitter(1.05e-8, 0.03))
    #: EL3 world-switch cost, one direction (Section IV-B1).
    world_switch: Distribution = field(default_factory=lambda: Uniform(2.38e-6, 3.60e-6))
    #: time for the rootkit to restore one 8-byte trace (Section IV-B2).
    recover_trace_8b: Distribution = field(default_factory=lambda: LogNormalJitter(5.5e-3, 0.05))
    #: cost of one system call round trip in the rich OS.
    syscall: Distribution = field(default_factory=lambda: LogNormalJitter(9e-7, 0.10))
    #: scheduler dispatch (context switch) latency in the rich OS.
    dispatch: Distribution = field(default_factory=lambda: LogNormalJitter(2.5e-6, 0.15))
    #: timer-tick handler cost.
    tick: Distribution = field(default_factory=lambda: LogNormalJitter(1.5e-6, 0.10))
    #: extra cache-refill/migration penalty a preempted task pays on resume.
    preemption_penalty: Distribution = field(default_factory=lambda: LogNormalJitter(3e-5, 0.30))


def a53_timing() -> ClusterTiming:
    """Cortex-A53 ("LITTLE") timing calibrated to the paper.

    Table I: hash avg 1.07e-8 (min 9.23e-9, max 1.14e-8); snapshot avg
    1.08e-8 (max 1.57e-8).  Section IV-B2: recover avg 5.80e-3.
    """
    return ClusterTiming(
        name="Cortex-A53",
        hash_byte=LogNormalJitter(1.07e-8, 0.035, lo_clip=9.23e-9, hi_clip=1.15e-8),
        snapshot_byte=LogNormalJitter(1.08e-8, 0.06, lo_clip=9.24e-9, hi_clip=1.60e-8),
        world_switch=Uniform(2.38e-6, 3.60e-6),
        recover_trace_8b=LogNormalJitter(5.80e-3, 0.035, hi_clip=6.13e-3),
        syscall=LogNormalJitter(1.2e-6, 0.10),
        dispatch=LogNormalJitter(3.2e-6, 0.15),
        tick=LogNormalJitter(2.0e-6, 0.10),
        preemption_penalty=LogNormalJitter(4.0e-5, 0.30),
    )


def a57_timing() -> ClusterTiming:
    """Cortex-A57 ("big") timing calibrated to the paper.

    Table I: hash avg 6.71e-9 (min 6.67e-9, max 7.50e-9); snapshot avg
    6.75e-9 (max 7.83e-9).  Section IV-B2: recover avg 4.96e-3.
    """
    return ClusterTiming(
        name="Cortex-A57",
        hash_byte=LogNormalJitter(6.71e-9, 0.02, lo_clip=6.67e-9, hi_clip=7.50e-9),
        snapshot_byte=LogNormalJitter(6.75e-9, 0.03, lo_clip=6.67e-9, hi_clip=7.83e-9),
        world_switch=Uniform(2.38e-6, 3.60e-6),
        recover_trace_8b=LogNormalJitter(4.96e-3, 0.035, hi_clip=6.13e-3),
        syscall=LogNormalJitter(9e-7, 0.10),
        dispatch=LogNormalJitter(2.4e-6, 0.15),
        tick=LogNormalJitter(1.5e-6, 0.10),
        preemption_penalty=LogNormalJitter(3.0e-5, 0.30),
    )


@dataclass
class ClusterConfig:
    """One cluster: a name, how many cores, and its timing model."""

    name: str
    core_count: int
    timing: ClusterTiming

    def __post_init__(self) -> None:
        if self.core_count <= 0:
            raise ConfigurationError(f"cluster {self.name}: core_count must be > 0")


# ---------------------------------------------------------------------------
# Rich OS / kernel parameters
# ---------------------------------------------------------------------------


@dataclass
class KernelConfig:
    """Parameters of the simulated rich OS."""

    #: static kernel image size in bytes.
    image_size: int = PAPER_KERNEL_SIZE
    #: number of System.map sections to synthesise.
    section_count: int = PAPER_AREA_COUNT
    #: scheduling-clock tick frequency (CONFIG_HZ); 100..1000 in real kernels.
    hz: int = 250
    #: CFS scheduling slice.
    cfs_slice: float = 3e-3
    #: minimum granularity before CFS preempts.
    cfs_min_granularity: float = 7.5e-4
    #: deterministic seed offset for the synthetic kernel image bytes.
    image_seed: int = 0x5A71
    #: physical load address of the kernel image in simulated DRAM.
    image_base: int = 0x8008_0000

    def __post_init__(self) -> None:
        if not 100 <= self.hz <= 1000:
            raise ConfigurationError(f"hz must be within [100, 1000], got {self.hz}")
        if self.image_size <= 0:
            raise ConfigurationError("image_size must be positive")
        if self.section_count <= 0:
            raise ConfigurationError("section_count must be positive")


# ---------------------------------------------------------------------------
# Prober (attacker-side) parameters
# ---------------------------------------------------------------------------


def default_cross_core_read_delay() -> Distribution:
    """Visibility delay of another core's time-report buffer entry.

    Usually sub-1e-4 (store buffer / cache line transfer), but with a small
    probability the read stalls on coherence traffic for up to ~1.3e-3 s —
    the "abnormal large delay" the paper identifies as the source of the big
    probing thresholds.  The spike probability and tail shape are calibrated
    so the max-over-a-probing-period statistics land on Table II.
    """
    base = LogNormalJitter(2.2e-5, 0.45)
    spike = BoundedPareto(xm=8e-5, alpha=2.4, cap=1.32e-3)
    return SpikeMixture(base=base, spike=spike, spike_prob=1.1e-4)


@dataclass
class ProberConfig:
    """Attacker probe-loop parameters (Section IV-A1)."""

    #: sleep between probe iterations (KProber-II); the paper's Tsleep.
    tsleep: float = PAPER_TSLEEP
    #: CPU cost of one Time Reporter step.
    report_cost: float = 1.2e-6
    #: CPU cost of one Time Comparer sweep over n-1 cores.
    compare_cost: float = 3.5e-6
    #: staleness threshold above which a core is reported as "in secure
    #: world".  The paper's deployed TZ-Evader uses the worst observed 1.8e-3.
    detect_threshold: float = PAPER_THRESHOLD_WORST
    #: cross-core buffer visibility delay model.
    cross_core_delay: Distribution = field(default_factory=default_cross_core_read_delay)
    #: jitter added to each sleep wake-up (timer + scheduler granularity).
    wake_jitter: Distribution = field(default_factory=lambda: LogNormalJitter(6e-6, 0.6))
    #: a comparer discards a round when its own previous report is older
    #: than this multiple of tsleep (it knows it overslept and the buffer
    #: contents are uniformly stale) — prevents self-induced false alarms.
    self_gate_factor: float = 4.0
    #: after an oversleep the comparer distrusts the buffer for this long:
    #: cross-core entries may be up to a worst-case coherence delay old,
    #: so staleness evidence within this window proves nothing.
    distrust_window: float = 2e-3
    #: Table II statistical model: per-observation probing-threshold tail.
    #: Calibrated so the max over a probing window reproduces the paper's
    #: avg/max/min columns (see repro.attacks.threshold_model).
    threshold_tail: Distribution = field(
        default_factory=lambda: BoundedPareto(xm=2.06e-5, alpha=3.6, cap=2.0e-3)
    )
    #: effective independent extreme-value draws per second of probing.
    #: Coherence stalls arrive in correlated bursts, so this is far below
    #: the raw buffer-read rate; calibrated against Table II.
    effective_reads_per_second: float = 500.0
    #: probing a single known core sees ~1/4 the all-core threshold
    #: (Section IV-B2, last paragraph).
    single_core_factor: float = 0.25


# ---------------------------------------------------------------------------
# SATIN / introspection parameters
# ---------------------------------------------------------------------------


@dataclass
class SatinConfig:
    """SATIN engine parameters (Section V)."""

    #: time budget within which every area must be scanned at least once;
    #: the per-round base period is tp = tgoal / area_count.
    tgoal: float = PAPER_AREA_COUNT * 8.0
    #: random deviation applied to each wake-up as a fraction of tp
    #: (the paper draws td uniformly from [-tp, tp], i.e. fraction 1.0).
    deviation_fraction: float = 1.0
    #: upper bound on one area's size; None derives it from the race model.
    max_area_size: Optional[int] = None
    #: how the kernel is divided: "sections" (one area per System.map
    #: section — the paper's 19 areas), "packed" (consecutive sections
    #: merged up to the bound; ablation), or "whole" (a single area — the
    #: baseline whole-kernel introspection TZ-Evader defeats).
    partition_mode: str = "sections"
    #: refuse to install when an area exceeds the race-model bound.
    enforce_area_bound: bool = True
    #: pick a random core for each round (False = fixed core 0; ablation).
    random_core: bool = True
    #: apply the random deviation (False = strict period; ablation).
    random_deviation: bool = True
    #: block normal-world interrupts during a round (SCR_EL3.IRQ = 0).
    block_ns_interrupts: bool = True
    #: scan read granularity in bytes; the race against trace recovery is
    #: resolved at this resolution (27 us at A57 hash speed).
    chunk_size: int = 4096
    #: use snapshot-then-hash instead of direct hashing (Table I compares
    #: the two; direct hashing wins and is the default).
    use_snapshot: bool = False

    def config_digest(self) -> str:
        """Stable content digest of every field, distribution params included.

        Canonical field ordering is handled by the digest layer, so two
        equal configurations always hash identically; any parameter change
        (including a distribution's shape) changes the digest.  Campaign
        cache keys are derived from this, so it must never drift silently —
        ``tests/campaign/test_digest.py`` pins the value for the Juno preset.
        """
        from repro.campaign.digest import stable_digest

        return stable_digest(self)

    def __post_init__(self) -> None:
        if self.tgoal <= 0:
            raise ConfigurationError("tgoal must be positive")
        if not 0.0 <= self.deviation_fraction <= 1.0:
            raise ConfigurationError("deviation_fraction must be in [0, 1]")
        if self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if self.partition_mode not in ("sections", "packed", "whole"):
            raise ConfigurationError(
                f"unknown partition_mode {self.partition_mode!r}"
            )


# ---------------------------------------------------------------------------
# Machine-level configuration
# ---------------------------------------------------------------------------


@dataclass
class MachineConfig:
    """Full description of the simulated board."""

    clusters: List[ClusterConfig] = field(
        default_factory=lambda: [
            ClusterConfig("LITTLE", 4, a53_timing()),
            ClusterConfig("big", 2, a57_timing()),
        ]
    )
    kernel: KernelConfig = field(default_factory=KernelConfig)
    prober: ProberConfig = field(default_factory=ProberConfig)
    satin: SatinConfig = field(default_factory=SatinConfig)
    #: shared system counter frequency (Juno: 50 MHz generic timer).
    counter_frequency_hz: int = 50_000_000
    #: secure SRAM size for the trusted OS (hash tables, wake-up queue).
    secure_memory_size: int = 4 * 1024 * 1024
    #: DRAM size visible to the normal world.
    dram_size: int = 256 * 1024 * 1024
    #: master seed for all random streams.
    seed: int = 2019
    #: record a trace of simulation events.
    trace_enabled: bool = True

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ConfigurationError("machine needs at least one cluster")
        if self.counter_frequency_hz <= 0:
            raise ConfigurationError("counter frequency must be positive")
        end = self.kernel.image_base + self.kernel.image_size
        if end > self.dram_size + 0x8000_0000:
            raise ConfigurationError("kernel image does not fit in DRAM")

    @property
    def core_count(self) -> int:
        return sum(c.core_count for c in self.clusters)

    def core_timings(self) -> List[ClusterTiming]:
        """Per-core timing models, in core-index order."""
        timings: List[ClusterTiming] = []
        for cluster in self.clusters:
            timings.extend([cluster.timing] * cluster.core_count)
        return timings

    def cluster_core_indices(self, name: str) -> Tuple[int, ...]:
        """Core indices belonging to the named cluster."""
        start = 0
        for cluster in self.clusters:
            if cluster.name == name:
                return tuple(range(start, start + cluster.core_count))
            start += cluster.core_count
        raise ConfigurationError(f"no cluster named {name!r}")

    def with_seed(self, seed: int) -> "MachineConfig":
        """A copy of this configuration with a different master seed."""
        return replace(self, seed=seed)

    def config_digest(self) -> str:
        """Stable content digest of the whole machine description.

        Covers every nested dataclass and every distribution parameter
        (cluster timings, kernel layout, prober model, SATIN policy, the
        master seed).  Used as the configuration component of campaign
        cache keys; pinned by a regression test so keys never silently
        drift when fields are added or reordered.
        """
        from repro.campaign.digest import stable_digest

        return stable_digest(self)


def juno_r1_config(seed: int = 2019) -> MachineConfig:
    """The paper's evaluation platform: ARM Juno r1 (4xA53 + 2xA57)."""
    return MachineConfig(seed=seed)


def generic_octa_config(seed: int = 2019) -> MachineConfig:
    """A symmetric 8-core TEE platform (portability, Section VII-D).

    SATIN only needs multi-core, a privileged mode, and a secure timer —
    all topology-independent here.  This preset models a generic octa-core
    phone SoC with uniform big-class cores.
    """
    return MachineConfig(
        clusters=[ClusterConfig("octa", 8, a57_timing())],
        seed=seed,
    )


def smm_like_config(seed: int = 2019) -> MachineConfig:
    """An x86/SMM-flavoured platform (portability, Section VII-D).

    Models SICE-style SMM isolation: a 4-core symmetric machine whose
    "world switch" is an SMM entry — an order of magnitude costlier than
    a TrustZone switch (tens of microseconds), which the race model and
    the area-size bound absorb automatically.
    """
    smm_timing = ClusterTiming(
        name="x86-SMM",
        hash_byte=LogNormalJitter(4.0e-9, 0.03),
        snapshot_byte=LogNormalJitter(4.2e-9, 0.04),
        world_switch=Uniform(3.0e-5, 6.0e-5),  # SMM entry/exit cost
        recover_trace_8b=LogNormalJitter(4.0e-3, 0.05),
        syscall=LogNormalJitter(6e-7, 0.10),
        dispatch=LogNormalJitter(1.8e-6, 0.15),
        tick=LogNormalJitter(1.2e-6, 0.10),
        preemption_penalty=LogNormalJitter(2.5e-5, 0.30),
    )
    return MachineConfig(
        clusters=[ClusterConfig("smm", 4, smm_timing)],
        seed=seed,
    )


#: Named platform presets, as accepted by ``python -m repro campaign
#: --preset`` and :mod:`repro.campaign` grids.
PRESET_CONFIGS = {
    "juno_r1": juno_r1_config,
    "generic_octa": generic_octa_config,
    "smm_like": smm_like_config,
}


def preset_config(name: str, seed: int = 2019) -> MachineConfig:
    """Build a preset platform by name."""
    try:
        factory = PRESET_CONFIGS[name]
    except KeyError:
        known = ", ".join(sorted(PRESET_CONFIGS))
        raise ConfigurationError(f"unknown preset {name!r} (known: {known})") from None
    return factory(seed=seed)
