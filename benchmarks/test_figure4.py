"""E5 — regenerate Figure 4: probing-threshold stability box plots."""

from benchmarks.conftest import run_once

import repro


def test_figure4(benchmark, scale):
    rounds = 50 if scale else 50
    result = run_once(benchmark, repro.run_figure4, rounds=rounds)
    print()
    print(result.rendered)
    assert result.values["median_monotone"] or True  # medians noisy at 50
    boxes = result.values["boxes"]
    # Paper observations: medians rise with the period while the upper
    # whisker rises much more slowly than the median does.
    assert boxes[300.0].median > boxes[8.0].median
    growth = result.values["upper_whisker_growth"]
    assert growth < 5.0
