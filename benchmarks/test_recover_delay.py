"""E3 — regenerate the Tns_recover measurement (Section IV-B2)."""

from benchmarks.conftest import run_once

import repro


def test_recover_delay(benchmark, scale):
    repetitions = 50 if scale else 25
    result = run_once(benchmark, repro.run_recover_delay, repetitions=repetitions)
    print()
    print(result.rendered)
    assert result.values["a57_recovers_faster"]
    summaries = result.values["summaries"]
    assert abs(summaries["A53"].average - 5.80e-3) / 5.80e-3 < 0.06
    assert abs(summaries["A57"].average - 4.96e-3) / 4.96e-3 < 0.06
