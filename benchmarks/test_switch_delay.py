"""E2 — regenerate the Ts_switch measurement (Section IV-B1)."""

from benchmarks.conftest import run_once

import repro


def test_switch_delay(benchmark, scale):
    repetitions = 50 if scale else 25
    result = run_once(benchmark, repro.run_switch_delay, repetitions=repetitions)
    print()
    print(result.rendered)
    assert result.values["within_paper_range"]
    assert result.values["clusters_similar"]
