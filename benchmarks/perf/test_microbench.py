"""Perf-smoke microbenchmarks (``python -m pytest benchmarks/perf``).

These are the CI-facing wrappers around :mod:`repro.bench`.  Wall-clock
numbers are *reported* (printed with ``-s``) but never asserted — the only
failures here are **deterministic** regressions: a different ``(time, seq)``
firing sequence, a diverged fused-scan timeline, a changed experiment
table, or the coalescing/caching machinery silently turning itself off.

The full suite (``python -m repro bench --out BENCH_4.json --check
benchmarks/perf/expected_determinism.json``) runs the same checks at
production event counts; these wrappers use smaller workloads so the smoke
job stays under a minute.
"""

import hashlib
import json
import os

from repro.bench import (
    ReferenceSimulator,
    bench_boot_cache,
    bench_scan_coalescing,
    engine_equivalence,
    _lean_timer_workload,
    _scan_mix_workload,
)

_EXPECTED = os.path.join(os.path.dirname(os.path.abspath(__file__)), "expected_determinism.json")


def _load_expected():
    with open(_EXPECTED, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_engine_fires_identical_time_seq_sequence():
    result = engine_equivalence(n_events=8_000)
    assert result["optimized_checksum"] == result["reference_checksum"]


def test_engine_checksum_matches_pinned_value():
    # The pinned checksum is computed at the full bench's n_events; this
    # wrapper re-runs at that size because the checksum covers every firing.
    result = engine_equivalence()
    assert result["optimized_checksum"] == _load_expected()["engine_sequence_checksum"]


def test_scan_mix_and_timer_workloads_run_on_both_engines():
    # Smoke only: both engines drain both workloads to completion.  The
    # timeline equivalence of the two engines is asserted by the checksum
    # tests above; here we only guard against workload bit-rot.
    from repro.sim.simulator import Simulator

    for engine_cls in (Simulator, ReferenceSimulator):
        _scan_mix_workload(engine_cls(), 4_000, fused=engine_cls is Simulator)
        _lean_timer_workload(engine_cls(), 4_000)


def test_fused_scan_timeline_matches_per_chunk():
    result = bench_scan_coalescing(passes=1)
    expected = _load_expected()
    assert result["timeline_identical"], "fused scan diverged from per-chunk"
    assert result["events_fired"] == result["events_fired_chunked"]
    assert result["rounds"] // result["passes"] == expected["scan_rounds_per_pass"]
    # The whole point of coalescing: far fewer heap entries for the same
    # logical timeline.  A 2x guard catches the optimization silently
    # disabling itself without being sensitive to exact event counts.
    assert result["events_scheduled"] * 2 < result["events_scheduled_chunked"]


def test_boot_digest_cache_hits_on_second_build():
    result = bench_boot_cache()
    assert result["identical_digests"], "cached boot digest diverged from cold build"
    assert result["digest_cache_hits"] >= 1, "second stack build did not hit the digest cache"


def test_experiment_tables_match_pinned_hashes():
    from repro.experiments.report import run_experiment

    expected = _load_expected()
    for experiment_id, key in (("E1", "e1_table_sha256"), ("E9", "e9_table_sha256")):
        result = run_experiment(experiment_id, seed=2019)
        sha = hashlib.sha256(result.rendered.encode()).hexdigest()
        assert sha == expected[key], f"{experiment_id} table changed: {sha}"
