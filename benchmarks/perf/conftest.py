"""Make ``repro`` importable when the perf suite is run standalone.

The tier-1 suite is invoked with ``PYTHONPATH=src``; this conftest lets
``python -m pytest benchmarks/perf`` work without that incantation.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
