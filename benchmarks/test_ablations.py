"""A1 — ablations over SATIN's design choices (DESIGN.md experiment A1).

Each variant drops one SATIN ingredient and faces the strongest matching
attacker.  Expected detection rates on scans of the trace area:

* full SATIN, fixed-core, packed-areas : 100%
* fixed-period (PredictiveEvader)      : ~0% — why random deviation matters
* whole-kernel (classic TZ-Evader)     : ~0% — why small areas matter
* preemptible (IRQ storm)              : guarantee VIOLATED — rounds
  stretch past the race bound, why SATIN blocks NS interrupts
"""

from benchmarks.conftest import run_once

import repro


def test_ablations(benchmark, scale):
    scans = 6 if scale else 3
    result = run_once(benchmark, repro.run_ablations, trace_scans_wanted=scans)
    print()
    print(result.rendered)
    outcomes = result.values["outcomes"]
    assert outcomes["satin"].detection_rate == 1.0
    assert outcomes["packed-areas"].detection_rate == 1.0
    assert outcomes["fixed-core"].detection_rate >= 0.5
    assert outcomes["whole-kernel"].detection_rate == 0.0
    assert outcomes["fixed-period"].detection_rate <= 0.35
    assert outcomes["fixed-period"].proactive_hides > 0
    # The NS-blocking ablation: the storm stretches rounds far past the
    # race bound (factor >> 1); the blocking variants stay within the
    # window up to the documented A53 slack (see EXPERIMENTS.md).
    assert outcomes["preemptible"].guarantee_factor > 3.0
    for safe in ("satin", "fixed-core"):
        assert outcomes[safe].guarantee_factor <= 1.3
    assert outcomes["packed-areas"].guarantee_factor <= 2.0
