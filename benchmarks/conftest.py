"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (run with ``-s`` to see them, or
check ``bench_output.txt``).  ``REPRO_BENCH_FULL=1`` switches to the
paper's full experiment sizes (50 repetitions, 190 detection rounds, 16 s
workload runs); the default sizes keep the whole suite to a few minutes.
"""

import os
import pathlib

import pytest

#: Rendered tables are also appended here, so the regenerated paper
#: tables survive pytest's stdout capture (see bench_tables.txt after a
#: benchmark run).
TABLES_PATH = pathlib.Path(__file__).resolve().parent.parent / "bench_tables.txt"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scale():
    return full_scale()


_tables_file_fresh = False


def _fresh_tables_file() -> None:
    # Truncate lazily, on the first appended table of the session, so a
    # run that produces no tables (e.g. ``pytest benchmarks/perf``) does
    # not wipe the previous run's regenerated tables.
    global _tables_file_fresh
    if not _tables_file_fresh:
        TABLES_PATH.write_text(
            "# Regenerated paper tables/figures (latest benchmark run)\n\n"
        )
        _tables_file_fresh = True


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The result's rendered table (if any) is appended to ``TABLES_PATH``
    in addition to being printed by the caller.
    """
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    rendered = getattr(result, "rendered", "")
    if rendered:
        _fresh_tables_file()
        with TABLES_PATH.open("a", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.write("\n\n")
    return result
