"""A2 — the three probers head to head (Section III-B/III-C)."""

from benchmarks.conftest import run_once

import repro


def test_prober_comparison(benchmark, scale):
    rounds = 8 if scale else 4
    result = run_once(benchmark, repro.run_prober_comparison, rounds=rounds)
    print()
    print(result.rendered)
    assert result.values["latency_ordering_holds"]
    assert result.values["kprober1_mostly_blind_to_satin"]
    outcomes = result.values["outcomes"]
    # Every prober sees every whole-kernel freeze.
    for prober in ("kprober2", "user", "kprober1"):
        assert outcomes[(prober, "whole-kernel")].detection_rate == 1.0
    # The sleep-loop probers also register SATIN's short rounds...
    assert outcomes[("kprober2", "satin")].detection_rate == 1.0
    # ...which does not help them win the race (see test_detection.py).
