"""E10 — regenerate Figure 7: UnixBench degradation under SATIN.

Default size: all 12 programs, 1-task and 6-task, 8-second runs.
``REPRO_BENCH_FULL=1``: 16-second runs (tighter estimates).
"""

from benchmarks.conftest import run_once

import repro
from repro.workloads.programs import UNIXBENCH_PROGRAMS


def test_figure7(benchmark, scale):
    duration = 16.0 if scale else 8.0
    result = run_once(
        benchmark,
        repro.run_figure7,
        duration=duration,
        task_counts=(1, 6),
        programs=UNIXBENCH_PROGRAMS,
    )
    print()
    print(result.rendered)
    points = {(p.program, p.task_count): p for p in result.values["points"]}
    means = result.values["means"]
    # Shape checks against the paper:
    # the two outliers dominate...
    fc = points[("file_copy_256B", 1)].degradation
    cs = points[("pipe_context_switching", 1)].degradation
    assert 0.02 < fc < 0.06      # paper: 3.556%
    assert 0.02 < cs < 0.06      # paper: 3.912%
    # ...everything else stays below 1%...
    for program in UNIXBENCH_PROGRAMS:
        if program.name in ("file_copy_256B", "pipe_context_switching"):
            continue
        assert points[(program.name, 1)].degradation < 0.01
    # ...and the means land near 0.711% / 0.848%.
    assert 0.004 < means[1] < 0.012
    assert 0.004 < means[6] < 0.014
