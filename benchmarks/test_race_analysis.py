"""E7/E11 — regenerate the Section IV-C race analysis and the live
escape-rate comparison between the whole-kernel baseline and SATIN."""

from benchmarks.conftest import run_once

import repro


def test_race_analysis(benchmark, scale):
    trials = 50_000 if scale else 10_000
    result = run_once(benchmark, repro.run_race_analysis, mc_trials=trials)
    print()
    print(result.rendered)
    assert result.values["s_bound"] == 1_218_351
    assert abs(result.values["unprotected_fraction"] - 0.898) < 0.002
    assert abs(result.values["mc_escape_rate"] - 0.90) < 0.04


def test_escape_simulation(benchmark, scale):
    rounds = 12 if scale else 6
    result = run_once(
        benchmark, repro.run_escape_comparison, rounds=rounds, mean_period=2.0
    )
    print()
    print(result.rendered)
    assert result.values["baseline"].escape_rate == 1.0
    assert result.values["satin"].escape_rate == 0.0
