"""E1 — regenerate Table I: secure world introspection time."""

from benchmarks.conftest import run_once

import repro


def test_table1(benchmark, scale):
    repetitions = 50 if scale else 15
    result = run_once(benchmark, repro.run_table1, repetitions=repetitions)
    print()
    print(result.rendered)
    assert result.values["hash_not_slower_than_snapshot_a53"]
    assert result.values["a57_faster_than_a53"]
    # Shape: A57 scans ~1.6x faster than A53 (paper: 1.07e-8 vs 6.71e-9).
    ratio = result.values["A53.hash"].average / result.values["A57.hash"].average
    assert 1.4 < ratio < 1.8
