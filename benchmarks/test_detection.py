"""E9 — regenerate the Section VI-B1 detection campaign.

The paper's validation: 190 rounds (10 full kernel passes) of SATIN
against a live TZ-Evader, with the GETTID hijack in area 14.  The default
benchmark size runs 2 passes (38 rounds); ``REPRO_BENCH_FULL=1`` runs the
paper's full 10 passes.
"""

from benchmarks.conftest import run_once

import repro


def test_detection_campaign(benchmark, scale):
    passes = 10 if scale else 2
    result = run_once(benchmark, repro.run_detection_experiment, passes=passes)
    print()
    print(result.rendered)
    stats = result.values["stats"]
    assert stats.prober_faithful            # 0 FP, 0 FN (all rounds seen)
    assert stats.all_trace_checks_detected  # hijack caught every time
    assert stats.trace_area_checks == passes
    assert abs(stats.full_pass_time_estimate - 152.0) < 2.0
    if stats.avg_area_gap is not None:
        # Paper: 141 s between consecutive area-14 checks at tp = 8 s.
        assert 0.4 * 152 < stats.avg_area_gap < 1.6 * 152
