"""E8 — regenerate the user-level prober evaluation (Section III-B1)."""

from benchmarks.conftest import run_once

import repro


def test_user_prober_eval(benchmark, scale):
    rounds = 10 if scale else 5
    result = run_once(
        benchmark, repro.run_user_prober_eval, introspection_rounds=rounds
    )
    print()
    print(result.rendered)
    delays = result.values["delay_summary"]
    assert delays is not None
    assert delays.maximum < 5.97e-3   # the paper's Tns_delay bound
    a57 = result.values["a57_check_summary"]
    if a57 is not None:
        assert abs(a57.average - 8.04e-2) / 8.04e-2 < 0.1
