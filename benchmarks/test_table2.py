"""E4/E6 — regenerate Table II: probing threshold vs probing period."""

from benchmarks.conftest import run_once

import repro


def test_table2_all_cores(benchmark, scale):
    rounds = 50 if scale else 50  # the paper's own size is cheap here
    result = run_once(benchmark, repro.run_table2, rounds=rounds)
    print()
    print(result.rendered)
    assert result.values["average_grows_with_period"]
    assert result.values["worst_observed"] <= 2.0e-3


def test_table2_single_core_ratio(benchmark):
    result = run_once(benchmark, repro.run_single_core_ratio, rounds=200)
    print()
    print(result.rendered)
    for ratio in result.values["ratios"].values():
        assert abs(ratio - 0.25) < 0.1
