#!/usr/bin/env python3
"""TZ-Evader vs. whole-kernel introspection: the attack that motivates SATIN.

Reproduces the paper's Section III/IV storyline:

1. a naive persistent rootkit is caught by even a whole-kernel random
   introspection baseline;
2. the same rootkit equipped with KProber-II (the SCHED_FIFO liveness
   prober) hides its 8-byte trace the moment any core vanishes into the
   secure world — and escapes every single scan.

Run:  python examples/evasion_attack.py
"""

from repro import (
    KProberII,
    PersistentRootkit,
    ProberAccelerationOracle,
    TZEvader,
    boot_rich_os,
    build_machine,
    juno_r1_config,
    random_whole_kernel,
)

MEAN_PERIOD = 2.0  # accelerated introspection period for a quick demo
DURATION = 30.0


def run_act(with_prober: bool, seed: int) -> None:
    machine = build_machine(juno_r1_config(seed=seed))
    rich_os = boot_rich_os(machine)
    engine = random_whole_kernel(machine, rich_os, mean_period=MEAN_PERIOD)
    engine.install()
    rootkit = PersistentRootkit(machine, rich_os)
    evader = None
    if with_prober:
        prober = KProberII(
            machine, rich_os, oracle=ProberAccelerationOracle(machine)
        ).install()
        evader = TZEvader(machine, rich_os, rootkit, prober.controller).start()
    else:
        rootkit.install()

    machine.run(until=DURATION)

    label = "TZ-Evader (prober + hide)" if with_prober else "naive rootkit"
    print(f"--- {label} vs whole-kernel random introspection ---")
    print(f"  introspection rounds : {engine.round_count}")
    print(f"  alarms raised        : {engine.detection_count}")
    if evader is not None:
        print(f"  probe detections     : {evader.detections_seen}")
        print(f"  hides completed      : {evader.hides_completed}")
        print(f"  re-attacks           : {evader.reattacks}")
        verdict = "ESCAPED every scan" if engine.detection_count == 0 else "caught"
        print(f"  verdict              : attacker {verdict}")
    else:
        verdict = "caught" if engine.detection_count else "not caught yet"
        print(f"  verdict              : attacker {verdict}")
    print()


def main() -> None:
    print("The race (Equation 1): the checker needs "
          "Ts_switch + S*Ts_1byte < Tns_delay + Tns_recover to win.\n")
    run_act(with_prober=False, seed=1)
    run_act(with_prober=True, seed=1)
    print("This is why random whole-kernel checking is not enough on "
          "multi-core — and what SATIN fixes (see satin_vs_evader.py).")


if __name__ == "__main__":
    main()
