#!/usr/bin/env python3
"""SATIN defeating TZ-Evader: the paper's Section VI-B1 campaign, live.

SATIN and a fully armed TZ-Evader run simultaneously.  The prober still
notices every secure-world entry (the side channel cannot be closed), the
evader still starts its recovery within ~2 ms — but each SATIN round scans
only one sub-bound area, so the malicious bytes are hashed before the
recovery lands.  Every scan of area 14 raises an alarm.

Run:  python examples/satin_vs_evader.py [passes]
"""

import sys

from repro import build_stack, run_detection_experiment


def main() -> None:
    passes = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    print(f"running {passes} full kernel pass(es) "
          f"({passes * 19} introspection rounds at tp = 8 s)...\n")
    stack = build_stack(seed=2019, with_satin=True, with_evader=True)
    result = run_detection_experiment(passes=passes, stack=stack)
    print(result.rendered)

    stats = result.values["stats"]
    print()
    print("race anatomy for one round:")
    assert stack.evader is not None and stack.prober is not None
    if stack.evader.hide_latencies:
        avg_hide = sum(stack.evader.hide_latencies) / len(stack.evader.hide_latencies)
        print(f"  attacker: detect secure entry + restore trace "
              f"~{avg_hide * 1e3:.1f} ms after t_start")
    assert stack.satin is not None
    avg_round = stack.satin.checker.average_round_duration()
    print(f"  defender: one area scanned in ~{avg_round * 1e3:.1f} ms, and the")
    print("            trace bytes sit near the area start — read within "
          "tens of microseconds.")
    print()
    verdict = (
        "SATIN detected the hijack on every area-14 scan"
        if stats.all_trace_checks_detected
        else "unexpected: some scans were evaded"
    )
    print(f"verdict: {verdict}.")


if __name__ == "__main__":
    main()
