#!/usr/bin/env python3
"""Explore the race-condition model (Equations 1 and 2) analytically.

Shows how the unprotected fraction of the kernel and SATIN's safe area
size respond to each parameter of the race: the attacker's recovery time,
the probing threshold, and the scanner's per-byte speed.

Run:  python examples/race_explorer.py
"""

from repro import RaceParameters, max_safe_area_size, s_bound, unprotected_fraction
from repro.analysis.tables import pct, render_table, sci


def sweep(title, parameter, values, **fixed):
    rows = []
    for value in values:
        params = RaceParameters(**{parameter: value}, **fixed)
        rows.append(
            [
                sci(value),
                f"{s_bound(params):,} B",
                pct(unprotected_fraction(params), 1),
                f"{max_safe_area_size(params):,} B",
            ]
        )
    print(render_table(
        (parameter, "S bound (Eq. 2)", "unprotected", "max safe area"),
        rows, title=title,
    ))
    print()


def main() -> None:
    baseline = RaceParameters()
    print("paper's worst case:")
    print(f"  S bound             : {s_bound(baseline):,} bytes "
          "(paper: 1,218,351)")
    print(f"  unprotected fraction: {pct(unprotected_fraction(baseline), 2)} "
          "(paper: ~90%)")
    print(f"  max safe area       : {max_safe_area_size(baseline):,} bytes")
    print()

    sweep(
        "Slower attackers are easier to catch (recovery-time sweep)",
        "tns_recover",
        [1e-3, 3e-3, 6.13e-3, 1e-2, 3e-2],
    )
    sweep(
        "Sharper probers are harder to defend against (threshold sweep)",
        "tns_threshold",
        [2e-4, 6e-4, 1.8e-3, 5e-3],
    )
    sweep(
        "Faster scanners protect more kernel (per-byte speed sweep)",
        "ts_1byte",
        [6.67e-9, 1.07e-8, 2e-8],
    )

    print("takeaway: whatever the parameters, a whole 11.9 MB kernel scan")
    print("always leaves most bytes beyond the S bound — only scanning")
    print("areas *smaller than the bound* (SATIN) closes the race.")


if __name__ == "__main__":
    main()
