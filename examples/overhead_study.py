#!/usr/bin/env python3
"""Mini Figure 7: SATIN's overhead on UnixBench-like workloads.

Runs a representative subset of the benchmark suite (one CPU-bound
program, one syscall-heavy program, and the two programs the paper found
most sensitive) with and without SATIN's self-activation, and prints the
normalized degradation next to the paper's numbers.

Run:  python examples/overhead_study.py          # quick subset
      python examples/overhead_study.py --all    # all 12 programs
"""

import sys

from repro import run_figure7
from repro.workloads.programs import UNIXBENCH_PROGRAMS, program_by_name

QUICK_SUBSET = (
    "dhrystone2",
    "syscall_overhead",
    "file_copy_256B",
    "pipe_context_switching",
)


def main() -> None:
    if "--all" in sys.argv:
        programs = list(UNIXBENCH_PROGRAMS)
        task_counts = (1, 6)
    else:
        programs = [program_by_name(name) for name in QUICK_SUBSET]
        task_counts = (1,)
    print(f"running {len(programs)} programs x {len(task_counts)} task "
          f"configuration(s), 8 s each, with and without SATIN...\n")
    result = run_figure7(duration=8.0, task_counts=task_counts, programs=programs)
    print(result.rendered)
    print()
    print("paper reference: 0.711% mean (1-task), 0.848% (6-task); "
          "outliers file copy 256B = 3.556%, context switching = 3.912%.")


if __name__ == "__main__":
    main()
