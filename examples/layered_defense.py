#!/usr/bin/env python3
"""The full defence-in-depth story (Sections I, VII-A, VII-C).

Act 0  — synchronous introspection (SPROBES/TZ-RKP style) blocks the
         attacker's direct write to the protected syscall table.
Act 1  — the KNOX-style data attack flips the page's AP bits via a
         write-what-where kernel bug; the payload lands silently.
Act 2  — the attacker also loads a kernel module and DKOM-hides it from
         the module list (dynamic data: static hashing can't object).
Act 3  — the asynchronous layer cleans up: SATIN's static hashing finds
         both the syscall payload AND the flipped PTE, and the semantic
         cross-view checker finds the hidden module.

Run:  python examples/layered_defense.py
"""

from repro import (
    KnoxBypassAttack,
    SynchronousIntrospection,
    boot_rich_os,
    build_machine,
    install_satin,
    juno_r1_config,
)
from repro.attacks.dkom import DkomModuleHider
from repro.kernel.modules import ModuleList
from repro.kernel.syscalls import NR_GETTID
from repro.secure.semantic import SemanticChecker, hidden_module_names


def main() -> None:
    machine = build_machine(juno_r1_config(seed=77))
    rich_os = boot_rich_os(machine)
    sync = SynchronousIntrospection(machine, rich_os).install()
    modules = ModuleList(rich_os.image)
    for name in ("usbcore", "ext4"):
        modules.load(name)
    satin = install_satin(machine, rich_os)  # trusted boot AFTER setup
    checker = SemanticChecker(modules)
    print("defences up: sync introspection (write mediation) + SATIN "
          "(async hashing) + semantic module checking\n")

    # --- Act 0: the naive write is stopped cold -----------------------
    attack = KnoxBypassAttack(sync)
    offset = rich_os.syscall_table.entry_offset(NR_GETTID)
    landed = attack.naive_write(offset, b"\xde\xad\xbe\xef\x00\x00\x00\x00")
    print(f"act 0: direct write to syscall table -> "
          f"{'landed?!' if landed else 'BLOCKED by sync introspection'} "
          f"({len(sync.mediations)} mediation records)")

    # --- Act 1: the AP-bit data attack sails through -------------------
    landed = attack.bypass_and_write(offset, b"\xde\xad\xbe\xef\x00\x00\x00\x00")
    print(f"act 1: PTE flip + payload write -> "
          f"{'LANDED silently' if landed else 'blocked'} "
          f"(mediations now: {len(sync.mediations)} — unchanged)")

    # --- Act 2: DKOM module hiding --------------------------------------
    modules.load("evil_mod")
    DkomModuleHider(modules, "evil_mod").hide()
    visible = [record.name for record in modules.walk_list()]
    print(f"act 2: evil_mod loaded and DKOM-hidden; lsmod sees {visible}")

    # --- Act 3: the asynchronous layer ---------------------------------
    while satin.full_passes < 1:
        machine.run_for(satin.policy.tp)
    alarmed = sorted({a.area_index for a in satin.alarms.alarms})
    print(f"\nact 3a: SATIN completed a full pass; alarms in areas {alarmed}")
    print("        area 14 = the syscall payload; area 16 (.data) = the "
          "flipped PTE *and* the module-slab churn:")
    print("        static hashing cannot tell a legitimate dynamic-data "
          "change from an attack, which is exactly")
    print("        why dynamic structures get the structure-aware check "
          "below instead.")
    result = checker.check_now(machine.now)
    print(f"act 3b: semantic cross-view check -> hidden modules: "
          f"{hidden_module_names(result)}")
    print("\nverdict: everything the synchronous layer missed was caught "
          "by the asynchronous layer — the paper's Section VII-C argument.")


if __name__ == "__main__":
    main()
