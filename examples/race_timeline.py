#!/usr/bin/env python3
"""Figure 3, live: the millisecond-level anatomy of one SATIN round.

Runs SATIN against a full TZ-Evader and prints the event timeline of one
introspection round — the secure entry, the prober noticing the vanished
core ~1.8 ms later, the recovery thread racing the scanner, and the
round's verdict.

Run:  python examples/race_timeline.py
"""

from repro import build_stack
from repro.analysis.timeline import build_timeline, render_timeline


def main() -> None:
    stack = build_stack(seed=11, with_satin=True, with_evader=True)
    satin = stack.satin
    assert satin is not None

    # Run until a round over the trace area (14) completes.
    target = None
    while target is None:
        stack.machine.run_for(satin.policy.tp)
        for result in satin.checker.results:
            if result.area_index == 14:
                target = result
                break

    print("one introspection round over the hijacked area, "
          "times relative to the secure timer firing:\n")
    events = build_timeline(
        stack.machine,
        start=target.start_time - 1e-3,
        end=target.end_time + 25e-3,
    )
    print(render_timeline(events, origin=target.start_time))
    print()
    verdict = "ALARM — evil bytes were read before the recovery landed" \
        if not target.match else "clean (unexpected!)"
    print(f"round verdict: {verdict}")
    print(f"round duration: {target.duration * 1e3:.2f} ms "
          f"(area {target.area_index}, {target.length:,} bytes, "
          f"core {target.core_index})")


if __name__ == "__main__":
    main()
