#!/usr/bin/env python3
"""Quickstart: boot the simulated board, install SATIN, catch a rootkit.

Builds the paper's ARM Juno r1 platform (4x Cortex-A53 + 2x Cortex-A57
with TrustZone), boots the rich OS, installs SATIN in the secure world,
then lets a kernel rootkit hijack the GETTID system call — and watches
SATIN's divide-and-conquer introspection raise the alarm.

Run:  python examples/quickstart.py
"""

from repro import build_machine, boot_rich_os, install_satin, juno_r1_config
from repro.hw.world import World
from repro.kernel.syscalls import NR_GETTID


def main() -> None:
    # 1. The board and the rich OS.
    machine = build_machine(juno_r1_config(seed=42))
    rich_os = boot_rich_os(machine)
    print(f"booted: {len(machine.cores)} cores, "
          f"kernel {rich_os.kernel_size:,} bytes, "
          f"{len(rich_os.image.system_map)} System.map sections")

    # 2. SATIN installs during trusted boot: per-area hashes are computed
    #    while the kernel is still pristine, and every core's *secure*
    #    timer gets a randomized wake-up time.
    satin = install_satin(machine, rich_os)
    print(f"SATIN installed: {len(satin.areas)} areas, "
          f"tp = {satin.policy.tp:.1f} s, "
          f"full kernel pass ~{satin.policy.full_pass_time:.0f} s")

    # 3. Let the system run cleanly for a while — no alarms.
    machine.run(until=30.0)
    print(f"t={machine.now:5.0f}s  rounds={satin.round_count:3d}  "
          f"alarms={satin.detection_count}")

    # 4. The attacker gains root and hijacks GETTID: 8 bytes of the
    #    system call table (inside "area 14") now point at malicious code.
    rich_os.syscall_table.write_entry(NR_GETTID, 0xBAD0000000000000, World.NORMAL)
    print("rootkit: GETTID handler hijacked "
          f"(area {rich_os.syscall_table.section_index})")

    # 5. Keep running until SATIN's random walk reaches area 14.
    while not satin.alarms.alarms:
        machine.run_for(satin.policy.tp)
    alarm = satin.alarms.alarms[0]
    print(f"t={machine.now:5.0f}s  ALARM: area {alarm.area_index} hash "
          f"mismatch on core {alarm.core_index} (round {alarm.round_index})")
    print()
    print("summary:", satin.summary())


if __name__ == "__main__":
    main()
